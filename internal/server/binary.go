package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// maxBinaryInflight bounds concurrently executing requests per binary
// connection. Pipelining is the point of the frame protocol — a router
// keeps several batches in flight on one pooled connection — but one
// connection must not be able to occupy the whole process.
const maxBinaryInflight = 8

// binSession is one binary (wire v2) connection's state. Requests run
// concurrently up to maxBinaryInflight and may complete out of order;
// responses are serialized by wmu.
type binSession struct {
	srv *Server
	br  *bufio.Reader
	dl  deadliner

	wmu sync.Mutex
	w   *bufio.Writer

	wg     sync.WaitGroup
	broken atomic.Bool // a write failed; the connection is done
}

// runBinarySession performs the server side of the version handshake and
// then serves frames until EOF, corruption, an idle timeout, or a drain.
// A drain wakes the blocked read via the expired read deadline, waits for
// in-flight requests, and lets their responses flush — same discipline as
// the text session.
func (s *Server) runBinarySession(br *bufio.Reader, out io.Writer, dl deadliner) {
	bs := &binSession{srv: s, br: br, dl: dl, w: bufio.NewWriterSize(out, 16<<10)}

	var hello [wire.HelloLen]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		return
	}
	cMin, cMax, err := wire.ParseHello(hello[:])
	if err != nil {
		s.counters.Add("errs", 1)
		bs.writeRaw(wire.AppendHelloReply(nil, 0))
		return
	}
	version, ok := wire.Negotiate(cMin, cMax, wire.VersionMin, wire.VersionMax)
	if !ok {
		s.counters.Add("errs", 1)
		bs.writeRaw(wire.AppendHelloReply(nil, 0))
		return
	}
	if !bs.writeRaw(wire.AppendHelloReply(nil, version)) {
		return
	}

	sem := make(chan struct{}, maxBinaryInflight)
	for {
		if s.draining.Load() || bs.broken.Load() {
			break
		}
		if dl != nil && s.cfg.IdleTimeout > 0 {
			dl.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		f, err := wire.ReadFrame(br, s.cfg.MaxFrameBytes)
		if err != nil {
			switch {
			case isTimeout(err) && !s.draining.Load():
				s.counters.Add("timeouts", 1)
				bs.respondErr(0, "idle timeout, closing connection")
			case errors.Is(err, wire.ErrFrameTooBig) || errors.Is(err, wire.ErrShortFrame):
				// Corruption cannot be resynced; say why before closing. The
				// zero id marks a response no request will claim.
				bs.respondErr(0, err.Error())
			}
			break
		}
		s.counters.Add("requests", 1)
		sem <- struct{}{}
		bs.wg.Add(1)
		go func(f wire.Frame) {
			defer func() { <-sem; bs.wg.Done() }()
			bs.handle(f)
		}(f)
	}
	bs.wg.Wait()
}

// handle answers one request frame. Runs on its own goroutine; everything
// it touches is either owned (the frame — ReadFrame allocates per frame)
// or internally synchronized.
func (bs *binSession) handle(f wire.Frame) {
	srv := bs.srv
	switch f.Type {
	case wire.MsgDist:
		q, err := wire.DecodeQuery(f.Payload)
		if err != nil {
			bs.respondErr(f.ID, err.Error())
			return
		}
		a, err := srv.b.Dist(q.U, q.V)
		if err != nil {
			bs.respondErr(f.ID, err.Error())
			return
		}
		bs.writeFrame(wire.Frame{Type: wire.MsgDistR, ID: f.ID, Payload: wire.AppendAnswer(nil, a)})
	case wire.MsgBatch:
		qs, err := wire.DecodeQueries(f.Payload)
		if err != nil {
			bs.respondErr(f.ID, err.Error())
			return
		}
		if len(qs) > srv.cfg.MaxBatch {
			bs.respondErr(f.ID, fmt.Sprintf("batch size must be in [1, %d]", srv.cfg.MaxBatch))
			return
		}
		// Unlike the text path there is no per-line validation here: the
		// batch goes to the backend as decoded, and invalid queries come
		// back as Unreachable sentinels per oracle.AnswerBatch semantics.
		// That is what keeps a routed batch byte-identical to a local one.
		as, err := srv.b.AnswerBatch(qs)
		if err != nil {
			bs.respondErr(f.ID, err.Error())
			return
		}
		srv.counters.Add("batches", 1)
		srv.counters.Add("requests", int64(len(qs)))
		bs.writeFrame(wire.Frame{Type: wire.MsgBatchR, ID: f.ID,
			Payload: wire.AppendAnswers(make([]byte, 0, wire.BatchFrameBytes(len(as))), as)})
	case wire.MsgStats:
		bs.writeFrame(wire.Frame{Type: wire.MsgStatsR, ID: f.ID, Payload: []byte(srv.statsLine())})
	case wire.MsgInfo:
		bs.writeFrame(wire.Frame{Type: wire.MsgInfoR, ID: f.ID,
			Payload: wire.AppendInfo(nil, wire.Info{N: srv.b.N(), MaxBatch: srv.cfg.MaxBatch})})
	default:
		bs.respondErr(f.ID, fmt.Sprintf("unknown frame type 0x%02x", f.Type))
	}
}

// respondErr answers a request with MsgErr and counts it.
func (bs *binSession) respondErr(id uint64, msg string) {
	bs.srv.counters.Add("errs", 1)
	bs.writeFrame(wire.Frame{Type: wire.MsgErr, ID: id, Payload: []byte(msg)})
}

// writeFrame sends one response frame under the write deadline. A write
// error marks the session broken; later writes become no-ops and the read
// loop exits at its next iteration.
func (bs *binSession) writeFrame(f wire.Frame) {
	bs.wmu.Lock()
	defer bs.wmu.Unlock()
	if bs.broken.Load() {
		return
	}
	bs.armWriteDeadline()
	err := wire.WriteFrame(bs.w, f, bs.srv.cfg.MaxFrameBytes)
	if err == nil {
		err = bs.w.Flush()
	}
	if err != nil {
		bs.broken.Store(true)
	}
}

// writeRaw sends pre-encoded bytes (the hello reply) under the write
// deadline, reporting success.
func (bs *binSession) writeRaw(b []byte) bool {
	bs.wmu.Lock()
	defer bs.wmu.Unlock()
	bs.armWriteDeadline()
	_, err := bs.w.Write(b)
	if err == nil {
		err = bs.w.Flush()
	}
	if err != nil {
		bs.broken.Store(true)
		return false
	}
	return true
}

func (bs *binSession) armWriteDeadline() {
	if bs.dl != nil && bs.srv.cfg.WriteTimeout > 0 {
		bs.dl.SetWriteDeadline(time.Now().Add(bs.srv.cfg.WriteTimeout))
	}
}
