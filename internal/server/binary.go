package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// maxBinaryInflight bounds concurrently executing requests per binary
// connection. Pipelining is the point of the frame protocol — a router
// keeps several batches in flight on one pooled connection — but one
// connection must not be able to occupy the whole process.
const maxBinaryInflight = 8

// binSession is one binary (wire v2–v4) connection's state. Requests run
// concurrently up to maxBinaryInflight and may complete out of order;
// responses are serialized by wmu. Frames are encoded at the negotiated
// version: a v3 session carries trace context both ways, a v2 session
// frames identically to the pre-trace protocol.
type binSession struct {
	srv     *Server
	br      *bufio.Reader
	dl      deadliner
	version uint16

	wmu sync.Mutex
	w   *bufio.Writer

	wg     sync.WaitGroup
	broken atomic.Bool // a write failed; the connection is done
}

// runBinarySession performs the server side of the version handshake and
// then serves frames until EOF, corruption, an idle timeout, or a drain.
// A drain wakes the blocked read via the expired read deadline, waits for
// in-flight requests, and lets their responses flush — same discipline as
// the text session.
func (s *Server) runBinarySession(br *bufio.Reader, out io.Writer, dl deadliner) {
	bs := &binSession{srv: s, br: br, dl: dl, w: bufio.NewWriterSize(out, 16<<10)}

	var hello [wire.HelloLen]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		return
	}
	cMin, cMax, err := wire.ParseHello(hello[:])
	if err != nil {
		s.counters.Add("errs", 1)
		bs.writeRaw(wire.AppendHelloReply(nil, 0))
		return
	}
	version, ok := wire.Negotiate(cMin, cMax, wire.VersionMin, wire.VersionMax)
	if !ok {
		s.counters.Add("errs", 1)
		bs.writeRaw(wire.AppendHelloReply(nil, 0))
		return
	}
	if !bs.writeRaw(wire.AppendHelloReply(nil, version)) {
		return
	}
	bs.version = version

	sem := make(chan struct{}, maxBinaryInflight)
	for {
		if s.draining.Load() || bs.broken.Load() {
			break
		}
		if dl != nil && s.cfg.IdleTimeout > 0 {
			dl.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		f, err := wire.ReadFrameV(br, s.cfg.MaxFrameBytes, version)
		if err != nil {
			switch {
			case isTimeout(err) && !s.draining.Load():
				s.counters.Add("timeouts", 1)
				bs.respondErr(0, "idle timeout, closing connection")
			case errors.Is(err, wire.ErrFrameTooBig) || errors.Is(err, wire.ErrShortFrame):
				// Corruption cannot be resynced; say why before closing. The
				// zero id marks a response no request will claim.
				bs.respondErr(0, err.Error())
			}
			break
		}
		s.counters.Add("requests", 1)
		// Trace decision happens at receipt so the queue hop covers the
		// time spent waiting behind the pipelining semaphore.
		tr := bs.maybeTrace(f)
		sem <- struct{}{}
		bs.wg.Add(1)
		go func(f wire.Frame, tr *obs.ReqTrace) {
			defer func() { <-sem; bs.wg.Done() }()
			bs.handle(f, tr)
		}(f, tr)
	}
	bs.wg.Wait()
}

// maybeTrace decides whether this request is traced: data requests
// (dist/batch) are traced when the client set the wire sampling bit, or
// when the server-side 1-in-N sampler elects them. A client-carried trace
// id is continued; server-elected traces mint a fresh id.
func (bs *binSession) maybeTrace(f wire.Frame) *obs.ReqTrace {
	if f.Type != wire.MsgDist && f.Type != wire.MsgBatch {
		return nil
	}
	if f.Trace.Sampled() {
		return obs.NewReqTrace(f.Trace.ID)
	}
	if bs.srv.shouldSample() {
		return obs.NewReqTrace(0)
	}
	return nil
}

// handle answers one request frame. Runs on its own goroutine; everything
// it touches is either owned (the frame — ReadFrameV allocates per frame)
// or internally synchronized. tr is nil for untraced requests; all
// tracing calls below are nil-safe, so the untraced path pays only the
// nil checks.
func (bs *binSession) handle(f wire.Frame, tr *obs.ReqTrace) {
	srv := bs.srv
	switch f.Type {
	case wire.MsgDist:
		q, err := wire.DecodeQuery(f.Payload)
		if err != nil {
			bs.finishErr(f, tr, err.Error())
			return
		}
		if tr != nil {
			tr.SetVerb("dist", fmt.Sprintf("u=%d v=%d", q.U, q.V))
			tr.Hop("queue", tr.Start(), "")
			srv.stages.observe(srv.stages.queue, srv.stages.queueEx, tr.ID(), tr.Start())
		}
		tb := time.Now()
		a, err := srv.distTrace(q.U, q.V, tr)
		if tr != nil {
			srv.stages.observe(srv.stages.backend, srv.stages.backendEx, tr.ID(), tb)
		}
		if err != nil {
			bs.finishErr(f, tr, err.Error())
			return
		}
		bs.respond(f, tr, wire.Frame{Type: wire.MsgDistR, ID: f.ID, Payload: wire.AppendAnswer(nil, a)})
	case wire.MsgBatch:
		qs, err := wire.DecodeQueries(f.Payload)
		if err != nil {
			bs.finishErr(f, tr, err.Error())
			return
		}
		if len(qs) > srv.cfg.MaxBatch {
			bs.finishErr(f, tr, fmt.Sprintf("batch size must be in [1, %d]", srv.cfg.MaxBatch))
			return
		}
		if tr != nil {
			tr.SetVerb("batch", fmt.Sprintf("n=%d", len(qs)))
			tr.Hop("queue", tr.Start(), "")
			srv.stages.observe(srv.stages.queue, srv.stages.queueEx, tr.ID(), tr.Start())
		}
		// Unlike the text path there is no per-line validation here: the
		// batch goes to the backend as decoded, and invalid queries come
		// back as Unreachable sentinels per oracle.AnswerBatch semantics.
		// That is what keeps a routed batch byte-identical to a local one.
		tb := time.Now()
		as, err := srv.batchTrace(qs, tr)
		if tr != nil {
			srv.stages.observe(srv.stages.backend, srv.stages.backendEx, tr.ID(), tb)
		}
		if err != nil {
			bs.finishErr(f, tr, err.Error())
			return
		}
		srv.counters.Add("batches", 1)
		srv.counters.Add("requests", int64(len(qs)))
		bs.respond(f, tr, wire.Frame{Type: wire.MsgBatchR, ID: f.ID,
			Payload: wire.AppendAnswers(make([]byte, 0, wire.BatchFrameBytes(len(as))), as)})
	case wire.MsgUpdate:
		if srv.up == nil {
			bs.respondErr(f.ID, "updates not supported (static graph; start the server with a dynamic engine)")
			return
		}
		u, v, add, err := wire.DecodeUpdateReq(f.Payload)
		if err != nil {
			bs.respondErr(f.ID, err.Error())
			return
		}
		res, err := srv.up.Update(u, v, add)
		if err != nil {
			bs.respondErr(f.ID, err.Error())
			return
		}
		bs.writeFrame(wire.Frame{Type: wire.MsgUpdateR, ID: f.ID, Payload: wire.AppendUpdateResult(nil, res)})
	case wire.MsgSnap:
		if srv.up == nil {
			bs.respondErr(f.ID, "updates not supported (static graph; start the server with a dynamic engine)")
			return
		}
		verify, err := wire.DecodeSnapReq(f.Payload)
		if err != nil {
			bs.respondErr(f.ID, err.Error())
			return
		}
		bs.writeFrame(wire.Frame{Type: wire.MsgSnapR, ID: f.ID,
			Payload: wire.AppendSnapshotInfo(nil, srv.up.Snapshot(verify))})
	case wire.MsgStats:
		bs.writeFrame(wire.Frame{Type: wire.MsgStatsR, ID: f.ID, Payload: []byte(srv.statsLine())})
	case wire.MsgInfo:
		bs.writeFrame(wire.Frame{Type: wire.MsgInfoR, ID: f.ID,
			Payload: wire.AppendInfo(nil, wire.Info{N: srv.b.N(), MaxBatch: srv.cfg.MaxBatch})})
	default:
		bs.respondErr(f.ID, fmt.Sprintf("unknown frame type 0x%02x", f.Type))
	}
}

// respond sends a successful data response, stamping the trace context
// (trace id, sampled bit, resolution-path mask — dropped on the wire for
// v2 peers) and completing the trace into the flight recorder.
func (bs *binSession) respond(req wire.Frame, tr *obs.ReqTrace, resp wire.Frame) {
	if tr == nil {
		// Untraced: echo the client's trace id (if any) with no sampled
		// bit, so a client that asked for sampling on a request the server
		// dropped tracing for can still correlate.
		resp.Trace = wire.ResponseContext(req.Trace.ID, false, 0)
		bs.writeFrame(resp)
		return
	}
	tw := time.Now()
	resp.Trace = wire.ResponseContext(tr.ID(), true, tr.Path())
	bs.writeFrame(resp)
	tr.Hop("write", tw, "")
	bs.srv.stages.observe(bs.srv.stages.write, bs.srv.stages.writeEx, tr.ID(), tw)
	tr.Finish(bs.srv.cfg.Flight, "")
}

// finishErr answers a request with MsgErr, counts it, and completes the
// trace (errored traces always land in the slow ring).
func (bs *binSession) finishErr(f wire.Frame, tr *obs.ReqTrace, msg string) {
	bs.srv.counters.Add("errs", 1)
	resp := wire.Frame{Type: wire.MsgErr, ID: f.ID, Payload: []byte(msg)}
	if tr != nil {
		resp.Trace = wire.ResponseContext(tr.ID(), true, tr.Path())
	}
	bs.writeFrame(resp)
	tr.Finish(bs.srv.cfg.Flight, msg)
}

// respondErr answers a request with MsgErr and counts it.
func (bs *binSession) respondErr(id uint64, msg string) {
	bs.srv.counters.Add("errs", 1)
	bs.writeFrame(wire.Frame{Type: wire.MsgErr, ID: id, Payload: []byte(msg)})
}

// writeFrame sends one response frame under the write deadline. A write
// error marks the session broken; later writes become no-ops and the read
// loop exits at its next iteration.
func (bs *binSession) writeFrame(f wire.Frame) {
	bs.wmu.Lock()
	defer bs.wmu.Unlock()
	if bs.broken.Load() {
		return
	}
	bs.armWriteDeadline()
	err := wire.WriteFrameV(bs.w, f, bs.srv.cfg.MaxFrameBytes, bs.version)
	if err == nil {
		err = bs.w.Flush()
	}
	if err != nil {
		bs.broken.Store(true)
	}
}

// writeRaw sends pre-encoded bytes (the hello reply) under the write
// deadline, reporting success.
func (bs *binSession) writeRaw(b []byte) bool {
	bs.wmu.Lock()
	defer bs.wmu.Unlock()
	bs.armWriteDeadline()
	_, err := bs.w.Write(b)
	if err == nil {
		err = bs.w.Flush()
	}
	if err != nil {
		bs.broken.Store(true)
		return false
	}
	return true
}

func (bs *binSession) armWriteDeadline() {
	if bs.dl != nil && bs.srv.cfg.WriteTimeout > 0 {
		bs.dl.SetWriteDeadline(time.Now().Add(bs.srv.cfg.WriteTimeout))
	}
}
