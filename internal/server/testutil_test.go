package server

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/spanner"
)

// testOracle builds a 128-node Δ=32 expander DC-spanner oracle, the
// standard serving fixture.
func testOracle(t testing.TB) *oracle.Oracle {
	t.Helper()
	g := gen.MustRandomRegular(128, 32, rng.New(3))
	dc, err := core.Build(g, core.Options{
		Algorithm: core.AlgoExpander,
		Seed:      3,
		Expander:  spanner.ExpanderOptions{EnsureConnected: true},
	})
	if err != nil {
		t.Fatalf("core.Build: %v", err)
	}
	o, err := oracle.New(dc, oracle.Options{Landmarks: 8})
	if err != nil {
		t.Fatalf("oracle.New: %v", err)
	}
	return o
}

// runScript feeds input through ServeStream and returns the response lines.
func runScript(t testing.TB, srv *Server, input string) []string {
	t.Helper()
	var out bytes.Buffer
	srv.ServeStream(context.Background(), strings.NewReader(input), &out)
	s := strings.TrimRight(out.String(), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// startTCP serves srv on a loopback listener until the test ends (or the
// returned cancel is called) and reports the dial address plus a channel
// carrying Serve's return value.
func startTCP(t testing.TB, srv *Server) (addr string, cancel context.CancelFunc, done chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done = make(chan error, 1)
	finished := make(chan struct{})
	go func() {
		done <- srv.Serve(ctx, l)
		close(finished)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-finished:
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after cancel")
		}
	})
	return l.Addr().String(), cancel, done
}

// client is a test-side protocol connection with read timeouts, so a
// server that silently drops a response fails the test instead of hanging
// it.
type client struct {
	t    testing.TB
	conn net.Conn
	rd   *bufio.Reader
}

func dialClient(t testing.TB, addr string) *client {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{t: t, conn: conn, rd: bufio.NewReader(conn)}
}

func (c *client) send(line string) {
	c.t.Helper()
	c.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.conn.Write([]byte(line + "\n")); err != nil {
		c.t.Fatalf("send %q: %v", line, err)
	}
}

// readLine returns the next response line; fails the test after timeout.
func (c *client) readLine() string {
	c.t.Helper()
	line, err := c.tryReadLine(5 * time.Second)
	if err != nil {
		c.t.Fatalf("readLine: %v", err)
	}
	return line
}

// tryReadLine is readLine that surfaces the error (for EOF assertions).
func (c *client) tryReadLine(timeout time.Duration) (string, error) {
	c.conn.SetReadDeadline(time.Now().Add(timeout))
	line, err := c.rd.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\n"), nil
}

// stripLatency drops the trailing " us=<...>" field from a dist response
// so sequential answers compare against batch answers.
func stripLatency(line string) string {
	if i := strings.LastIndex(line, " us="); i >= 0 {
		return line[:i]
	}
	return line
}
