// Package server is the hardened serving layer between cmd/dcserve (and
// cmd/dcrouter) and a query backend: it owns the connection lifecycle
// (accept loop, connection-count semaphore, per-connection idle and write
// deadlines, context-based graceful shutdown that drains in-flight
// requests) and both protocol flavors — the line protocol below and the
// binary frame protocol of internal/wire — with bounded request sizes and
// per-server request/error counters surfaced through the extended stats
// response. The protocol is sniffed from the first byte of each
// connection: wire.MagicByte opens a binary session, anything else is a
// text session.
//
// Protocol (one request per line; responses are one line each unless
// noted):
//
//	dist <u> <v>   ->  dist <u> <v> = <d> exact=<t|f> bound=<b> us=<latency>
//	                   (disconnected pairs answer "dist <u> <v> = unreachable")
//	route <u> <v>  ->  route <u> <v> = <d> path=<v0>-<v1>-...-<vk>
//	batch <n>      ->  reads n following "dist <u> <v>" lines and answers
//	                   them through the oracle's worker pool: n response
//	                   lines, index-aligned with the input, each in the
//	                   dist format without the us= field
//	stats          ->  stats <oracle report> | server <counter report>
//	quit           ->  closes the connection
//
// Malformed requests answer "err <message>" and keep the connection open;
// a request line over Config.MaxLineBytes answers "err line too long".
// Connections beyond Config.MaxConns are rejected with "err server busy".
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Defaults for the zero Config.
const (
	DefaultMaxConns     = 1024
	DefaultMaxLineBytes = 256 << 10
	DefaultMaxBatch     = 1 << 14
	DefaultIdleTimeout  = 2 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
	DefaultDrainTimeout = 5 * time.Second
)

// Config tunes the serving limits. The zero value means the defaults
// above; negative durations disable the corresponding deadline.
type Config struct {
	// MaxConns bounds concurrent connections; excess connections are
	// answered "err server busy" and closed.
	MaxConns int
	// MaxLineBytes bounds one request line; longer lines answer
	// "err line too long (max N bytes)" and the connection stays usable.
	MaxLineBytes int
	// MaxBatch bounds the n of a "batch <n>" command.
	MaxBatch int
	// IdleTimeout is the per-read deadline: a connection that sends no
	// complete line for this long is answered "err idle timeout" and
	// closed (the slow-loris guard). Ignored on deadline-less streams.
	IdleTimeout time.Duration
	// WriteTimeout is the per-response write deadline.
	WriteTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: connections still open this
	// long after the context is cancelled are force-closed.
	DrainTimeout time.Duration
	// MaxFrameBytes bounds one binary (wire v2) frame body. The zero value
	// picks the larger of wire.DefaultMaxFrameBytes and whatever a
	// MaxBatch-sized batch frame needs, so the two limits can never
	// disagree.
	MaxFrameBytes int
	// Logf, when set, receives serve-loop diagnostics (accept errors).
	Logf func(format string, args ...any)
	// Registry, when set, exposes the serving counters as
	// server_<name>_total metric families plus a server_active_conns
	// gauge — dcserve points this at the process registry so the wire
	// "stats" line and the /metrics endpoint render the same numbers.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxConns <= 0 {
		c.MaxConns = DefaultMaxConns
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = DefaultMaxLineBytes
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = wire.DefaultMaxFrameBytes
		if need := wire.BatchFrameBytes(c.MaxBatch) + 64; need > c.MaxFrameBytes {
			c.MaxFrameBytes = need
		}
	}
	return c
}

// Server serves both protocol flavors for one backend. A Server is
// single-use: once its context is cancelled (draining), it does not serve
// again.
type Server struct {
	b        Backend
	cfg      Config
	counters *stats.Counters
	sem      chan struct{}
	draining atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// New builds a Server over a single in-process oracle — the common case,
// kept as the front door so call sites predating Backend read unchanged.
func New(o *oracle.Oracle, cfg Config) *Server {
	return NewBackend(OracleBackend{o}, cfg)
}

// NewBackend builds a Server over any Backend. cfg's zero fields take the
// package defaults.
func NewBackend(b Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		b:   b,
		cfg: cfg,
		counters: stats.NewCounters(
			"conns", "busy", "requests", "batches", "errs", "toolong", "timeouts", "binconns"),
		sem:   make(chan struct{}, cfg.MaxConns),
		conns: make(map[net.Conn]struct{}),
	}
	if cfg.Registry != nil {
		cfg.Registry.AttachCounters("server", s.counters)
		cfg.Registry.GaugeFunc("server_active_conns",
			"connections currently being served",
			func() float64 { return float64(s.Active()) })
	}
	return s
}

// Counter exposes a named serving counter (see NewBackend for the set) —
// conns, busy, requests, batches, errs, toolong, timeouts, binconns.
func (s *Server) Counter(name string) int64 { return s.counters.Get(name) }

// Active returns the number of currently tracked connections.
func (s *Server) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on l until ctx is cancelled, then drains
// gracefully: the listener closes, blocked reads are woken, every session
// finishes its in-flight request and flushes its response, and connections
// still open after DrainTimeout are force-closed. Serve returns nil after
// a drain; a non-transient accept error (still preceded by a drain of the
// already-accepted connections) is returned as-is.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	var wg sync.WaitGroup
	stop := context.AfterFunc(ctx, func() {
		s.draining.Store(true)
		l.Close()
		s.wakeAll()
	})
	defer stop()

	var acceptErr error
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() || ctx.Err() != nil {
				break
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				s.logf("server: transient accept error: %v", err)
				continue
			}
			acceptErr = err
			s.draining.Store(true)
			s.wakeAll()
			break
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.counters.Add("busy", 1)
			s.rejectBusy(conn)
			continue
		}
		s.counters.Add("conns", 1)
		s.track(conn)
		wg.Add(1)
		go func() {
			defer func() {
				s.untrack(conn)
				conn.Close()
				<-s.sem
				wg.Done()
			}()
			s.runSession(conn, conn, conn)
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.logf("server: drain timeout, force-closing %d connections", s.Active())
		s.closeAll()
		<-done
	}
	return acceptErr
}

// ServeStream runs the protocol over an arbitrary reader/writer pair —
// dcserve's stdin mode. No deadlines apply (an interactive stdin session
// must not idle-timeout); ctx cancellation stops the session at the next
// request boundary.
func (s *Server) ServeStream(ctx context.Context, in io.Reader, out io.Writer) {
	if ctx.Err() != nil {
		s.draining.Store(true)
		return
	}
	stop := context.AfterFunc(ctx, func() { s.draining.Store(true) })
	defer stop()
	s.counters.Add("conns", 1)
	s.runSession(in, out, nil)
}

// rejectBusy answers the over-capacity connection with a protocol-level
// error instead of a silent close.
func (s *Server) rejectBusy(conn net.Conn) {
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	io.WriteString(conn, "err server busy\n")
	conn.Close()
}

func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// wakeAll expires every tracked connection's read deadline so sessions
// blocked in a read observe the drain immediately.
func (s *Server) wakeAll() {
	now := time.Now()
	s.mu.Lock()
	for conn := range s.conns {
		conn.SetReadDeadline(now)
	}
	s.mu.Unlock()
}

// closeAll force-closes the connections that outlived the drain budget.
func (s *Server) closeAll() {
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
}

// statsLine renders the extended stats response: the backend's serving
// report plus the server's connection/request/error counters, each side
// rendered from a single snapshot so the line never mixes counter values
// from different instants within one source.
func (s *Server) statsLine() string {
	var b strings.Builder
	b.WriteString(s.b.StatsLine())
	b.WriteString(" | server")
	for _, cv := range s.counters.Snapshot() {
		fmt.Fprintf(&b, " %s=%d", cv.Name, cv.Value)
	}
	fmt.Fprintf(&b, " active=%d", s.Active())
	return b.String()
}
