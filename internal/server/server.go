// Package server is the hardened serving layer between cmd/dcserve (and
// cmd/dcrouter) and a query backend: it owns the connection lifecycle
// (accept loop, connection-count semaphore, per-connection idle and write
// deadlines, context-based graceful shutdown that drains in-flight
// requests) and both protocol flavors — the line protocol below and the
// binary frame protocol of internal/wire — with bounded request sizes and
// per-server request/error counters surfaced through the extended stats
// response. The protocol is sniffed from the first byte of each
// connection: wire.MagicByte opens a binary session, anything else is a
// text session.
//
// Protocol (one request per line; responses are one line each unless
// noted):
//
//	dist <u> <v>   ->  dist <u> <v> = <d> exact=<t|f> bound=<b> us=<latency>
//	                   (disconnected pairs answer "dist <u> <v> = unreachable")
//	route <u> <v>  ->  route <u> <v> = <d> path=<v0>-<v1>-...-<vk>
//	batch <n>      ->  reads n following "dist <u> <v>" lines and answers
//	                   them through the oracle's worker pool: n response
//	                   lines, index-aligned with the input, each in the
//	                   dist format without the us= field
//	trace <u> <v>  ->  answers the query with tracing forced on and
//	                   returns the hop breakdown inline:
//	                   trace <u> <v> = <d> id=<hex> path=<...> total=<µs>
//	                   hops=[...]; the trace also lands in the flight
//	                   recorder when one is configured
//	stats          ->  stats <oracle report> | server <counter report>
//	update <u> <v> <add|del>
//	               ->  applies one edge mutation to a live (dynamic)
//	                   graph: update <u> <v> <op> = applied=<t|f>
//	                   rebuilt=<t|f> m=<m> hm=<hm> seq=<seq>; backends
//	                   without a dynamic engine answer
//	                   "err updates not supported"
//	snapshot [verify]
//	               ->  snapshot n=<n> m=<m> hm=<hm> seq=<seq>
//	                   ghash=<hex> hhash=<hex> verified=<t|f>
//	                   consistent=<t|f>; with verify the server rebuilds
//	                   the spanner from scratch and compares it to the
//	                   incrementally maintained one
//	quit           ->  closes the connection
//
// Malformed requests answer "err <message>" and keep the connection open;
// a request line over Config.MaxLineBytes answers "err line too long".
// Connections beyond Config.MaxConns are rejected with "err server busy".
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Defaults for the zero Config.
const (
	DefaultMaxConns     = 1024
	DefaultMaxLineBytes = 256 << 10
	DefaultMaxBatch     = 1 << 14
	DefaultIdleTimeout  = 2 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
	DefaultDrainTimeout = 5 * time.Second
)

// Config tunes the serving limits. The zero value means the defaults
// above; negative durations disable the corresponding deadline.
type Config struct {
	// MaxConns bounds concurrent connections; excess connections are
	// answered "err server busy" and closed.
	MaxConns int
	// MaxLineBytes bounds one request line; longer lines answer
	// "err line too long (max N bytes)" and the connection stays usable.
	MaxLineBytes int
	// MaxBatch bounds the n of a "batch <n>" command.
	MaxBatch int
	// IdleTimeout is the per-read deadline: a connection that sends no
	// complete line for this long is answered "err idle timeout" and
	// closed (the slow-loris guard). Ignored on deadline-less streams.
	IdleTimeout time.Duration
	// WriteTimeout is the per-response write deadline.
	WriteTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: connections still open this
	// long after the context is cancelled are force-closed.
	DrainTimeout time.Duration
	// MaxFrameBytes bounds one binary (wire v2) frame body. The zero value
	// picks the larger of wire.DefaultMaxFrameBytes and whatever a
	// MaxBatch-sized batch frame needs, so the two limits can never
	// disagree.
	MaxFrameBytes int
	// Log, when set, receives serve-loop and session diagnostics (accept
	// errors, drain progress) as structured records under
	// component=server. Nil discards.
	Log *slog.Logger
	// Registry, when set, exposes the serving counters as
	// server_<name>_total metric families plus a server_active_conns
	// gauge and the per-stage request histograms — dcserve points this at
	// the process registry so the wire "stats" line and the /metrics
	// endpoint render the same numbers.
	Registry *obs.Registry
	// Flight, when set, retains completed request traces (sampled binary
	// requests and every `trace` verb) for /debug/requests.
	Flight *obs.FlightRecorder
	// TraceSample, when > 0, server-side samples every Nth binary
	// dist/batch request that did not itself carry the wire sampling bit.
	// 0 traces only client-requested requests.
	TraceSample int
}

func (c Config) withDefaults() Config {
	if c.MaxConns <= 0 {
		c.MaxConns = DefaultMaxConns
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = DefaultMaxLineBytes
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = wire.DefaultMaxFrameBytes
		if need := wire.BatchFrameBytes(c.MaxBatch) + 64; need > c.MaxFrameBytes {
			c.MaxFrameBytes = need
		}
	}
	return c
}

// Server serves both protocol flavors for one backend. A Server is
// single-use: once its context is cancelled (draining), it does not serve
// again.
type Server struct {
	b        Backend
	tb       TracedBackend // b, when it supports traced calls; else nil
	ss       SnapshotStatser
	up       Updatable // b, when it serves graph mutations; else nil
	cfg      Config
	log      *slog.Logger
	counters *stats.Counters
	sem      chan struct{}
	draining atomic.Bool
	traceSeq atomic.Uint64
	stages   stageSet

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// stageSet holds the per-stage latency histograms (with trace-id
// exemplars) sampled requests feed: time spent queued behind the
// pipelining limit, in the backend, and writing the response. All nil
// when no Registry is configured; observe is nil-safe.
type stageSet struct {
	queue, backend, write       *stats.Histogram
	queueEx, backendEx, writeEx *obs.Exemplar
}

func newStageSet(reg *obs.Registry, prefix string) stageSet {
	var ss stageSet
	if reg == nil {
		return ss
	}
	// Same latency bucket ladder as stats.NewLatencyHistogram: 100ns up
	// through seconds.
	bounds := stats.ExpBuckets(100e-9, 1.34, 60)
	mk := func(stage, help string) (*stats.Histogram, *obs.Exemplar) {
		return reg.HistogramExemplar(prefix+"_stage_"+stage+"_seconds", help, bounds)
	}
	ss.queue, ss.queueEx = mk("queue", "Sampled-request time between frame receipt and handler start.")
	ss.backend, ss.backendEx = mk("backend", "Sampled-request time inside the backend (oracle or fleet fan-out).")
	ss.write, ss.writeEx = mk("write", "Sampled-request time encoding and flushing the response frame.")
	return ss
}

// observe records one stage duration with its trace-id exemplar; only
// sampled requests call it, so the unsampled hot path never touches the
// histograms.
func (ss stageSet) observe(h *stats.Histogram, ex *obs.Exemplar, traceID uint64, start time.Time) {
	if h == nil {
		return
	}
	sec := time.Since(start).Seconds()
	h.Observe(sec)
	ex.Observe(traceID, sec)
}

// New builds a Server over a single in-process oracle — the common case,
// kept as the front door so call sites predating Backend read unchanged.
func New(o *oracle.Oracle, cfg Config) *Server {
	return NewBackend(OracleBackend{o}, cfg)
}

// NewBackend builds a Server over any Backend. cfg's zero fields take the
// package defaults.
func NewBackend(b Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		b:   b,
		cfg: cfg,
		log: obs.Component(cfg.Log, "server"),
		counters: stats.NewCounters(
			"conns", "busy", "requests", "batches", "errs", "toolong", "timeouts", "binconns"),
		sem:   make(chan struct{}, cfg.MaxConns),
		conns: make(map[net.Conn]struct{}),
	}
	// Traced/snapshot capabilities are optional per backend; cache the
	// assertions once so the hot path does a nil check, not a type switch.
	s.tb, _ = b.(TracedBackend)
	s.ss, _ = b.(SnapshotStatser)
	s.up, _ = b.(Updatable)
	if cfg.Registry != nil {
		cfg.Registry.AttachCounters("server", s.counters)
		cfg.Registry.GaugeFunc("server_active_conns",
			"connections currently being served",
			func() float64 { return float64(s.Active()) })
		s.stages = newStageSet(cfg.Registry, "server")
	}
	return s
}

// shouldSample reports whether the server-side sampler elects the next
// binary request for tracing (every TraceSample-th data request;
// client-requested sampling bypasses this entirely).
func (s *Server) shouldSample() bool {
	n := s.cfg.TraceSample
	if n <= 0 {
		return false
	}
	return s.traceSeq.Add(1)%uint64(n) == 0
}

// distTrace answers one query through the traced backend surface when
// the backend offers it, falling back to the plain call (the trace then
// records server-side hops only).
func (s *Server) distTrace(u, v int32, tr *obs.ReqTrace) (oracle.Answer, error) {
	if s.tb != nil {
		return s.tb.DistTrace(u, v, tr)
	}
	return s.b.Dist(u, v)
}

// batchTrace is distTrace's batch analogue.
func (s *Server) batchTrace(qs []oracle.Query, tr *obs.ReqTrace) ([]oracle.Answer, error) {
	if s.tb != nil {
		return s.tb.AnswerBatchTrace(qs, tr)
	}
	return s.b.AnswerBatch(qs)
}

// Counter exposes a named serving counter (see NewBackend for the set) —
// conns, busy, requests, batches, errs, toolong, timeouts, binconns.
func (s *Server) Counter(name string) int64 { return s.counters.Get(name) }

// Active returns the number of currently tracked connections.
func (s *Server) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}


// Serve accepts connections on l until ctx is cancelled, then drains
// gracefully: the listener closes, blocked reads are woken, every session
// finishes its in-flight request and flushes its response, and connections
// still open after DrainTimeout are force-closed. Serve returns nil after
// a drain; a non-transient accept error (still preceded by a drain of the
// already-accepted connections) is returned as-is.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	var wg sync.WaitGroup
	stop := context.AfterFunc(ctx, func() {
		s.draining.Store(true)
		s.log.Info("drain started", "active", s.Active())
		l.Close()
		s.wakeAll()
	})
	defer stop()

	var acceptErr error
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() || ctx.Err() != nil {
				break
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				s.log.Warn("transient accept error", "err", err)
				continue
			}
			acceptErr = err
			s.log.Error("accept failed, draining", "err", err)
			s.draining.Store(true)
			s.wakeAll()
			break
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.counters.Add("busy", 1)
			s.rejectBusy(conn)
			continue
		}
		s.counters.Add("conns", 1)
		s.track(conn)
		wg.Add(1)
		go func() {
			defer func() {
				s.untrack(conn)
				conn.Close()
				<-s.sem
				wg.Done()
			}()
			s.runSession(conn, conn, conn)
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.log.Warn("drain timeout, force-closing connections", "conns", s.Active())
		s.closeAll()
		<-done
	}
	s.log.Info("drained")
	return acceptErr
}

// ServeStream runs the protocol over an arbitrary reader/writer pair —
// dcserve's stdin mode. No deadlines apply (an interactive stdin session
// must not idle-timeout); ctx cancellation stops the session at the next
// request boundary.
func (s *Server) ServeStream(ctx context.Context, in io.Reader, out io.Writer) {
	if ctx.Err() != nil {
		s.draining.Store(true)
		return
	}
	stop := context.AfterFunc(ctx, func() { s.draining.Store(true) })
	defer stop()
	s.counters.Add("conns", 1)
	s.runSession(in, out, nil)
}

// rejectBusy answers the over-capacity connection with a protocol-level
// error instead of a silent close.
func (s *Server) rejectBusy(conn net.Conn) {
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	io.WriteString(conn, "err server busy\n")
	conn.Close()
}

func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// wakeAll expires every tracked connection's read deadline so sessions
// blocked in a read observe the drain immediately.
func (s *Server) wakeAll() {
	now := time.Now()
	s.mu.Lock()
	for conn := range s.conns {
		conn.SetReadDeadline(now)
	}
	s.mu.Unlock()
}

// closeAll force-closes the connections that outlived the drain budget.
func (s *Server) closeAll() {
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
}

// statsLine renders the extended stats response: the backend's serving
// report plus the server's connection/request/error counters. When the
// backend exports its report from a registry snapshot and the server's
// counters feed the same registry, both halves (and the /metrics
// endpoint, which renders from the identical snapshot shape) derive from
// ONE capture instant — a stats line can never show an oracle that
// answered a query the server half hasn't counted yet. Without a shared
// registry it falls back to two per-source snapshots.
func (s *Server) statsLine() string {
	var b strings.Builder
	if s.ss != nil && s.cfg.Registry != nil {
		snap := s.cfg.Registry.Snapshot()
		b.WriteString(s.ss.StatsLineFrom(snap))
		b.WriteString(" | server")
		for _, cv := range s.counters.Snapshot() {
			fmt.Fprintf(&b, " %s=%d", cv.Name, snap.Counters["server_"+cv.Name])
		}
		fmt.Fprintf(&b, " active=%d", int(snap.Gauges["server_active_conns"]))
		return b.String()
	}
	b.WriteString(s.b.StatsLine())
	b.WriteString(" | server")
	for _, cv := range s.counters.Snapshot() {
		fmt.Fprintf(&b, " %s=%d", cv.Name, cv.Value)
	}
	fmt.Fprintf(&b, " active=%d", s.Active())
	return b.String()
}
