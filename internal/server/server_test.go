package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTCPServeBasics: dial, query, stats, quit over a real loopback
// connection.
func TestTCPServeBasics(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{})
	addr, _, _ := startTCP(t, srv)

	c := dialClient(t, addr)
	c.send("dist 0 1")
	if got := c.readLine(); !strings.HasPrefix(got, "dist 0 1 = ") {
		t.Fatalf("dist response %q", got)
	}
	c.send("stats")
	if got := c.readLine(); !strings.Contains(got, "| server conns=1") {
		t.Fatalf("stats response %q", got)
	}
	c.send("quit")
	if _, err := c.tryReadLine(2 * time.Second); !errors.Is(err, io.EOF) {
		t.Fatalf("after quit: err=%v, want EOF", err)
	}
}

// TestBatchOverTCPMatchesSequential is the acceptance check: batch answers
// over the wire are index-aligned and identical to sequential dist
// queries on the same connection.
func TestBatchOverTCPMatchesSequential(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{})
	addr, _, _ := startTCP(t, srv)
	c := dialClient(t, addr)

	const n = 64
	pairs := make([][2]int, n)
	for i := range pairs {
		pairs[i] = [2]int{(i * 13) % 128, (i*29 + 3) % 128}
	}
	seq := make([]string, n)
	for i, p := range pairs {
		c.send(fmt.Sprintf("dist %d %d", p[0], p[1]))
		seq[i] = stripLatency(c.readLine())
	}
	c.send(fmt.Sprintf("batch %d", n))
	for _, p := range pairs {
		c.send(fmt.Sprintf("dist %d %d", p[0], p[1]))
	}
	for i := range pairs {
		if got := c.readLine(); got != seq[i] {
			t.Fatalf("batch[%d] = %q, sequential %q", i, got, seq[i])
		}
	}
}

// TestBusyRejection: connections over MaxConns get a protocol-level
// "err server busy", not a silent close; a freed slot serves again.
func TestBusyRejection(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{MaxConns: 1})
	addr, _, _ := startTCP(t, srv)

	c1 := dialClient(t, addr)
	c1.send("dist 0 1")
	c1.readLine() // c1 is established and served

	c2 := dialClient(t, addr)
	got, err := c2.tryReadLine(5 * time.Second)
	if err != nil {
		t.Fatalf("busy read: %v", err)
	}
	if got != "err server busy" {
		t.Fatalf("second connection got %q, want %q", got, "err server busy")
	}
	if _, err := c2.tryReadLine(2 * time.Second); !errors.Is(err, io.EOF) {
		t.Fatalf("busy connection not closed: %v", err)
	}
	if srv.Counter("busy") != 1 {
		t.Fatalf("busy counter = %d, want 1", srv.Counter("busy"))
	}

	// Free the slot; the next dial must be served.
	c1.send("quit")
	deadline := time.Now().Add(5 * time.Second)
	for srv.Active() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c3 := dialClient(t, addr)
	c3.send("dist 2 3")
	if got := c3.readLine(); !strings.HasPrefix(got, "dist 2 3 = ") {
		t.Fatalf("post-busy connection got %q", got)
	}
}

// TestGracefulShutdownDrains: cancelling the serve context closes the
// listener, answers nothing new, and cleanly closes established
// connections — and Serve returns well inside the drain budget.
func TestGracefulShutdownDrains(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{DrainTimeout: 3 * time.Second})
	addr, cancel, done := startTCP(t, srv)

	c := dialClient(t, addr)
	c.send("dist 0 1")
	if got := c.readLine(); !strings.HasPrefix(got, "dist 0 1 = ") {
		t.Fatalf("pre-shutdown response %q", got)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	// The established connection was drained (EOF, no partial garbage).
	if line, err := c.tryReadLine(2 * time.Second); !errors.Is(err, io.EOF) {
		t.Fatalf("post-shutdown read: line=%q err=%v, want EOF", line, err)
	}
	// New dials are refused.
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestShutdownWhileServing cancels the context while requests are in
// flight on several connections: every client either gets its answer or a
// clean EOF — never a hang or a torn line — and Serve drains in time.
func TestShutdownWhileServing(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{DrainTimeout: 3 * time.Second})
	addr, cancel, done := startTCP(t, srv)

	const clients = 4
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		c := dialClient(t, addr)
		wg.Add(1)
		go func(c *client, id int) {
			defer wg.Done()
			<-start
			for j := 0; ; j++ {
				c.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
				if _, err := c.conn.Write([]byte(fmt.Sprintf("dist %d %d\n", id, (id+j)%128))); err != nil {
					return // server went away between requests: fine
				}
				line, err := c.tryReadLine(2 * time.Second)
				if err != nil {
					if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
						return // clean drain
					}
					var ne net.Error
					if errors.As(err, &ne) && ne.Timeout() {
						t.Errorf("client %d: silent drop (response neither arrived nor EOF)", id)
					}
					return
				}
				if !strings.HasPrefix(line, "dist ") {
					t.Errorf("client %d: torn response %q", id, line)
					return
				}
			}
		}(c, i)
	}
	close(start)
	time.Sleep(50 * time.Millisecond) // let requests overlap the shutdown
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not drain")
	}
	wg.Wait()
}

// TestConcurrentConnectionsHammer runs 8 connections issuing mixed
// commands against one oracle — the -race workhorse for the serving path.
func TestConcurrentConnectionsHammer(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{})
	addr, _, _ := startTCP(t, srv)

	const (
		clients = 8
		rounds  = 40
	)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := dialClient(t, addr)
			for j := 0; j < rounds; j++ {
				u, v := (id*17+j)%128, (j*11+id)%128
				switch j % 4 {
				case 0, 1:
					c.send(fmt.Sprintf("dist %d %d", u, v))
					if got := c.readLine(); !strings.HasPrefix(got, fmt.Sprintf("dist %d %d = ", u, v)) {
						t.Errorf("client %d: %q", id, got)
						return
					}
				case 2:
					c.send(fmt.Sprintf("route %d %d", u, v))
					if got := c.readLine(); !strings.HasPrefix(got, fmt.Sprintf("route %d %d = ", u, v)) {
						t.Errorf("client %d: %q", id, got)
						return
					}
				case 3:
					c.send("batch 2")
					c.send(fmt.Sprintf("dist %d %d", u, v))
					c.send(fmt.Sprintf("dist %d %d", v, u))
					a, b := c.readLine(), c.readLine()
					if !strings.HasPrefix(a, fmt.Sprintf("dist %d %d = ", u, v)) ||
						!strings.HasPrefix(b, fmt.Sprintf("dist %d %d = ", v, u)) {
						t.Errorf("client %d: batch %q / %q", id, a, b)
						return
					}
				}
			}
			c.send("quit")
		}(i)
	}
	wg.Wait()
	if got := srv.Counter("conns"); got != clients {
		t.Fatalf("conns counter = %d, want %d", got, clients)
	}
	if got := srv.Counter("errs"); got != 0 {
		t.Fatalf("errs counter = %d on a clean workload", got)
	}
}

// TestServeStreamContextStops: a cancelled context ends a stream session
// at the next request boundary.
func TestServeStreamContextStops(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pr, pw := io.Pipe()
	defer pw.Close()
	finished := make(chan struct{})
	go func() {
		srv.ServeStream(ctx, pr, io.Discard)
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeStream ignored the cancelled context")
	}
}
