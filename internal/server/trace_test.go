package server

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/wire"
)

// hopNames extracts the hop names of a record in order.
func hopNames(rec *obs.TraceRecord) []string {
	names := make([]string, len(rec.Hops))
	for i, h := range rec.Hops {
		names[i] = h.Name
	}
	return names
}

// TestTraceVerb: the text protocol's `trace u v` answers the distance
// plus the hop breakdown inline, and the trace lands in the flight
// recorder.
func TestTraceVerb(t *testing.T) {
	flight := obs.NewFlightRecorder(8, 4, 0)
	srv := New(testOracle(t), Config{Flight: flight})

	lines := runScript(t, srv, "trace 0 1\nquit\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines: %q", len(lines), lines)
	}
	re := regexp.MustCompile(`^trace 0 1 = \d+ id=[0-9a-f]{16} path=\S+ total=[\d.]+µs hops=\[oracle \+[\d.]+µs/[\d.]+µs \(path=\S+\)\]$`)
	if !re.MatchString(lines[0]) {
		t.Fatalf("trace response %q does not match %v", lines[0], re)
	}

	recent := flight.Recent()
	if len(recent) != 1 {
		t.Fatalf("flight recorder holds %d traces, want 1", len(recent))
	}
	rec := recent[0]
	if rec.Verb != "trace" || rec.Detail != "u=0 v=1" {
		t.Errorf("record verb/detail = %q/%q", rec.Verb, rec.Detail)
	}
	if !strings.Contains(lines[0], "id="+rec.ID) {
		t.Errorf("inline id does not match the recorded trace: %q vs %s", lines[0], rec.ID)
	}

	// Errors render err lines and land in the slow ring.
	lines = runScript(t, srv, "trace -1 5\ntrace 0\nquit\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "err ") || !strings.HasPrefix(lines[1], "err ") {
		t.Fatalf("bad trace args answered %q", lines)
	}
	if len(flight.Slow()) != 1 { // only the out-of-range one reached the backend
		t.Errorf("slow ring holds %d, want the errored trace", len(flight.Slow()))
	}
}

// TestBinaryTraceEndToEnd: a v3 client that sets the sampling bit gets
// back its own trace id, the sampled bit, and a resolution-path mask,
// and the server records queue/oracle/write hops in the flight recorder.
func TestBinaryTraceEndToEnd(t *testing.T) {
	flight := obs.NewFlightRecorder(8, 4, 0)
	reg := obs.NewRegistry()
	srv := New(testOracle(t), Config{Flight: flight, Registry: reg})
	addr, _, _ := startTCP(t, srv)
	c := dialWire(t, addr)
	if c.Version() != wire.VersionMax {
		t.Fatalf("negotiated v%d, want v%d", c.Version(), wire.VersionMax)
	}

	const id = 0xfeed0001
	a, rtc, err := c.DistTraced(0, 1, wire.SampledContext(id))
	if err != nil {
		t.Fatalf("DistTraced: %v", err)
	}
	if a.U != 0 || a.V != 1 {
		t.Fatalf("answer %+v", a)
	}
	if rtc.ID != id || !rtc.Sampled() {
		t.Fatalf("response trace ctx %+v, want id %#x sampled", rtc, id)
	}
	if rtc.PathMask() == 0 {
		t.Fatal("response carries no resolution-path mask")
	}

	qs := []oracle.Query{{U: 2, V: 3}, {U: 4, V: 5}}
	if _, rtc, err = c.BatchTraced(qs, wire.SampledContext(id+1)); err != nil {
		t.Fatalf("BatchTraced: %v", err)
	}
	if rtc.ID != id+1 || !rtc.Sampled() || rtc.PathMask() == 0 {
		t.Fatalf("batch response trace ctx %+v", rtc)
	}

	recent := flight.Recent()
	if len(recent) != 2 {
		t.Fatalf("flight recorder holds %d traces, want 2", len(recent))
	}
	batchRec, distRec := recent[0], recent[1] // newest first
	if distRec.ID != "00000000feed0001" || distRec.Verb != "dist" || distRec.Detail != "u=0 v=1" {
		t.Errorf("dist record = %+v", distRec)
	}
	if batchRec.ID != "00000000feed0002" || batchRec.Verb != "batch" || batchRec.Detail != "n=2" {
		t.Errorf("batch record = %+v", batchRec)
	}
	for _, rec := range recent {
		got := hopNames(rec)
		if len(got) != 3 || got[0] != "queue" || got[1] != "oracle" || got[2] != "write" {
			t.Errorf("%s hops = %v, want [queue oracle write]", rec.Verb, got)
		}
		if rec.Path == "none" {
			t.Errorf("%s record path = none", rec.Verb)
		}
	}

	// The per-stage histograms observed each traced request, and the
	// exemplars carry the trace ids.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exposition := b.String()
	for _, stage := range []string{"server_stage_queue_seconds", "server_stage_backend_seconds", "server_stage_write_seconds"} {
		if !strings.Contains(exposition, stage+"_count 2") {
			t.Errorf("/metrics misses %s_count 2", stage)
		}
	}
	if !strings.Contains(exposition, `trace_id="00000000feed000`) {
		t.Error("/metrics carries no trace-id exemplar")
	}
}

// TestBinaryUntracedEchoesID: without the sampling bit nothing is traced
// — the response echoes the id unsampled and the recorder stays empty.
func TestBinaryUntracedEchoesID(t *testing.T) {
	flight := obs.NewFlightRecorder(8, 4, 0)
	srv := New(testOracle(t), Config{Flight: flight})
	addr, _, _ := startTCP(t, srv)
	c := dialWire(t, addr)

	_, rtc, err := c.DistTraced(0, 1, wire.TraceContext{ID: 0x77}) // id, no sampled bit
	if err != nil {
		t.Fatalf("DistTraced: %v", err)
	}
	if rtc.ID != 0x77 || rtc.Sampled() || rtc.PathMask() != 0 {
		t.Fatalf("untraced response ctx %+v, want bare id echo", rtc)
	}
	if flight.Recorded() != 0 {
		t.Fatalf("untraced request recorded %d traces", flight.Recorded())
	}
}

// TestBinaryServerSampling: TraceSample elects requests even when the
// client never asks, minting fresh trace ids.
func TestBinaryServerSampling(t *testing.T) {
	flight := obs.NewFlightRecorder(8, 4, 0)
	srv := New(testOracle(t), Config{Flight: flight, TraceSample: 2})
	addr, _, _ := startTCP(t, srv)
	c := dialWire(t, addr)

	for i := 0; i < 6; i++ {
		if _, err := c.Dist(int32(i), int32(i+1)); err != nil {
			t.Fatalf("Dist %d: %v", i, err)
		}
	}
	if got := flight.Recorded(); got != 3 {
		t.Fatalf("1-in-2 sampling recorded %d of 6, want 3", got)
	}
	for _, rec := range flight.Recent() {
		if rec.ID == "0000000000000000" {
			t.Error("server-elected trace kept id 0")
		}
	}
}

// TestBinaryTraceV2Dropped: a pinned-v2 client against a tracing server
// gets plain v2 service — the trace context does not survive the
// downgrade in either direction, and nothing is recorded.
func TestBinaryTraceV2Dropped(t *testing.T) {
	flight := obs.NewFlightRecorder(8, 4, 0)
	srv := New(testOracle(t), Config{Flight: flight})
	addr, _, _ := startTCP(t, srv)

	c, err := wire.Dial(addr, wire.ClientOptions{MaxVersion: 2})
	if err != nil {
		t.Fatalf("Dial v2: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	if c.Version() != 2 {
		t.Fatalf("negotiated v%d, want 2", c.Version())
	}
	a, rtc, err := c.DistTraced(0, 1, wire.SampledContext(0xbeef))
	if err != nil {
		t.Fatalf("DistTraced over v2: %v", err)
	}
	if a.U != 0 || a.V != 1 {
		t.Fatalf("answer %+v", a)
	}
	if rtc != (wire.TraceContext{}) {
		t.Fatalf("v2 response returned trace ctx %+v, want zero", rtc)
	}
	if flight.Recorded() != 0 {
		t.Fatalf("v2 request recorded %d traces", flight.Recorded())
	}
}
