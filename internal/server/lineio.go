package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
)

// discardLimit bounds how much of an oversized line the reader will eat
// while resyncing to the next newline; a client still streaming a single
// line past this is disconnected rather than serviced.
const discardLimit = 16 << 20

// lineReader reads newline-terminated request lines with a hard length
// bound. The old serving path used bufio.Scanner and never checked
// sc.Err(), so a line over the scanner's 64KB default silently killed the
// connection with no response; this reader instead reports oversized lines
// to the caller (which answers "err line too long") and resyncs past them
// so the protocol stays usable.
type lineReader struct {
	r   *bufio.Reader
	max int
	buf []byte
}

func newLineReader(r io.Reader, max int) *lineReader {
	return &lineReader{r: bufio.NewReaderSize(r, 4096), max: max}
}

// readLine returns the next line with the trailing '\n' (and an optional
// '\r') stripped. tooLong reports a line exceeding max bytes; the reader
// has already discarded through the terminating newline, so the caller can
// answer an error and keep the connection. A final unterminated line is
// returned like bufio.Scanner would return it, with the EOF surfacing on
// the next call. A non-nil err means the stream is done (EOF, disconnect,
// read deadline); when tooLong and err are both set, the resync itself
// failed and the connection must close.
func (lr *lineReader) readLine() (line string, tooLong bool, err error) {
	lr.buf = lr.buf[:0]
	for {
		frag, ferr := lr.r.ReadSlice('\n')
		lr.buf = append(lr.buf, frag...)
		switch {
		case ferr == nil:
			trimmed := bytes.TrimSuffix(lr.buf[:len(lr.buf)-1], []byte{'\r'})
			if len(trimmed) > lr.max {
				return "", true, nil
			}
			return string(trimmed), false, nil
		case errors.Is(ferr, bufio.ErrBufferFull):
			if len(lr.buf) > lr.max {
				return "", true, lr.discardToNewline()
			}
		case errors.Is(ferr, io.EOF) && len(lr.buf) > 0:
			trimmed := bytes.TrimSuffix(lr.buf, []byte{'\r'})
			if len(trimmed) > lr.max {
				return "", true, io.EOF
			}
			return string(trimmed), false, nil
		default:
			return "", false, ferr
		}
	}
}

// discardToNewline eats the rest of an oversized line (up to discardLimit)
// so the next readLine starts at a fresh request.
func (lr *lineReader) discardToNewline() error {
	discarded := 0
	for {
		frag, err := lr.r.ReadSlice('\n')
		discarded += len(frag)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, bufio.ErrBufferFull):
			if discarded > discardLimit {
				return errors.New("server: oversized line exceeded resync limit")
			}
		default:
			return err
		}
	}
}
