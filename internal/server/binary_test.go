package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/wire"
)

// dialWire connects a wire.Client to a server started with startTCP.
func dialWire(t testing.TB, addr string) *wire.Client {
	t.Helper()
	c, err := wire.Dial(addr, wire.ClientOptions{RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("wire.Dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestBinaryMatchesText answers the same queries over both protocols on
// the same server and checks they agree (the text line is the rendering
// of the binary answer).
func TestBinaryMatchesText(t *testing.T) {
	srv := New(testOracle(t), Config{})
	addr, _, _ := startTCP(t, srv)

	bc := dialWire(t, addr)
	tc := dialClient(t, addr)

	pairs := [][2]int32{{0, 1}, {5, 100}, {7, 7}, {127, 3}}
	for _, p := range pairs {
		a, err := bc.Dist(p[0], p[1])
		if err != nil {
			t.Fatalf("binary Dist(%d,%d): %v", p[0], p[1], err)
		}
		tc.send(fmtDist(p[0], p[1]))
		text := stripLatency(tc.readLine())
		if want := formatDist(a, -1); text != want {
			t.Fatalf("protocol disagreement for (%d,%d): text %q, binary renders %q", p[0], p[1], text, want)
		}
	}

	if srv.Counter("binconns") != 1 {
		t.Fatalf("binconns = %d, want 1", srv.Counter("binconns"))
	}
}

func fmtDist(u, v int32) string {
	return fmt.Sprintf("dist %d %d", u, v)
}

// TestBinaryBatchMatchesOracle checks the binary batch path returns
// exactly oracle.AnswerBatch, including sentinel answers for invalid
// queries (no pre-validation on the binary path).
func TestBinaryBatchMatchesOracle(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{})
	addr, _, _ := startTCP(t, srv)
	c := dialWire(t, addr)

	qs := []oracle.Query{{U: 0, V: 1}, {U: -5, V: 2}, {U: 3, V: 1 << 20}, {U: 64, V: 65}}
	got, err := c.Batch(qs)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	want := o.AnswerBatch(qs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[1].Dist != graph.Unreachable {
		t.Fatalf("invalid query answered %+v, want Unreachable sentinel", got[1])
	}
}

// TestBinaryStatsInfo exercises MsgStats and MsgInfo.
func TestBinaryStatsInfo(t *testing.T) {
	srv := New(testOracle(t), Config{MaxBatch: 77})
	addr, _, _ := startTCP(t, srv)
	c := dialWire(t, addr)

	info, err := c.Info()
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if info.N != 128 || info.MaxBatch != 77 {
		t.Fatalf("Info = %+v, want N=128 MaxBatch=77", info)
	}
	line, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if !strings.Contains(line, "server") || !strings.Contains(line, "binconns=1") {
		t.Fatalf("stats line %q missing server counters", line)
	}
}

// TestBinaryErrors exercises MsgErr responses: bad payloads and oversized
// batches answer errors and keep the connection usable.
func TestBinaryErrors(t *testing.T) {
	srv := New(testOracle(t), Config{MaxBatch: 4})
	addr, _, _ := startTCP(t, srv)
	c := dialWire(t, addr)

	if _, err := c.Batch(make([]oracle.Query, 5)); err == nil {
		t.Fatal("oversized batch accepted")
	} else if !strings.Contains(err.Error(), "batch size") {
		t.Fatalf("oversized batch error = %v", err)
	}
	// The connection survives protocol-level errors.
	if _, err := c.Dist(0, 1); err != nil {
		t.Fatalf("Dist after error: %v", err)
	}
	if !c.Healthy() {
		t.Fatal("connection died on a protocol-level error")
	}
}

// TestBinaryFrameCorruptionCloses sends a frame with an oversized length
// prefix and expects MsgErr id 0 followed by a close.
func TestBinaryFrameCorruptionCloses(t *testing.T) {
	srv := New(testOracle(t), Config{})
	addr, _, _ := startTCP(t, srv)

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	conn.Write(wire.AppendHello(nil, wire.VersionMin, wire.VersionMax))
	var reply [wire.HelloLen]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		t.Fatalf("hello reply: %v", err)
	}
	// 512 MiB length prefix: over any sane frame limit.
	conn.Write(binary.BigEndian.AppendUint32(nil, 1<<29))

	f, err := wire.ReadFrame(conn, wire.DefaultMaxFrameBytes)
	if err != nil {
		t.Fatalf("reading error frame: %v", err)
	}
	if f.Type != wire.MsgErr || f.ID != 0 {
		t.Fatalf("got frame %+v, want MsgErr id 0", f)
	}
	if _, err := wire.ReadFrame(conn, wire.DefaultMaxFrameBytes); err == nil {
		t.Fatal("connection stayed open after frame corruption")
	}
}

// TestBinaryVersionRejected checks a client advertising only unknown
// versions gets a version-0 reply.
func TestBinaryVersionRejected(t *testing.T) {
	srv := New(testOracle(t), Config{})
	addr, _, _ := startTCP(t, srv)

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	conn.Write(wire.AppendHello(nil, 99, 120))
	var reply [wire.HelloLen]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		t.Fatalf("hello reply: %v", err)
	}
	v, err := wire.ParseHelloReply(reply[:])
	if err != nil {
		t.Fatalf("ParseHelloReply: %v", err)
	}
	if v != 0 {
		t.Fatalf("negotiated version %d for a [99,120] client, want 0", v)
	}
}

// TestBinaryPipeliningConcurrent floods one connection from several
// goroutines; every answer must match its own query (ids can't cross).
func TestBinaryPipeliningConcurrent(t *testing.T) {
	srv := New(testOracle(t), Config{})
	addr, _, _ := startTCP(t, srv)
	c := dialWire(t, addr)

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				u, v := int32((g*41+i)%128), int32((g*17+i*3)%128)
				a, err := c.Dist(u, v)
				if err != nil {
					t.Errorf("Dist(%d,%d): %v", u, v, err)
					return
				}
				if a.U != u || a.V != v {
					t.Errorf("Dist(%d,%d) answered for (%d,%d)", u, v, a.U, a.V)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestBinaryDrainAnswersInflight starts a binary request, cancels the
// server, and expects the in-flight response to still arrive before the
// connection closes.
func TestBinaryDrainAnswersInflight(t *testing.T) {
	srv := New(testOracle(t), Config{})
	addr, cancel, done := startTCP(t, srv)
	c := dialWire(t, addr)

	if _, err := c.Dist(0, 1); err != nil {
		t.Fatalf("warmup Dist: %v", err)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain hung with an open binary connection")
	}
}

// TestServeStreamStillText guards the stdin mode: ServeStream input that
// does not start with the magic byte speaks the text protocol unchanged.
func TestServeStreamStillText(t *testing.T) {
	srv := New(testOracle(t), Config{})
	lines := runScript(t, srv, "dist 0 1\nquit\n")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "dist 0 1 = ") {
		t.Fatalf("text-over-stream broke: %q", lines)
	}
}
