package server

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/oracle"
)

// handle dispatches one request line, writing one response line — or, for
// batch, one per batched query. A non-nil return means the connection is
// unusable and the session must end; protocol-level problems answer
// "err <message>" and return nil.
func (sess *session) handle(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return sess.respondErrf("empty command")
	}
	o := sess.srv.b
	switch fields[0] {
	case "stats":
		return sess.respond("stats " + sess.srv.statsLine())
	case "dist":
		u, v, err := parsePair(fields)
		if err != nil {
			return sess.respondErrf("%s", err)
		}
		t0 := time.Now()
		ans, err := o.Dist(u, v)
		if err != nil {
			return sess.respondErrf("%s", err)
		}
		return sess.respond(formatDist(ans, time.Since(t0)))
	case "route":
		u, v, err := parsePair(fields)
		if err != nil {
			return sess.respondErrf("%s", err)
		}
		p, ans, err := o.Route(u, v)
		if err != nil {
			return sess.respondErrf("%s", err)
		}
		if p == nil {
			return sess.respond(fmt.Sprintf("route %d %d = unreachable", u, v))
		}
		parts := make([]string, len(p))
		for i, x := range p {
			parts[i] = strconv.Itoa(int(x))
		}
		return sess.respond(fmt.Sprintf("route %d %d = %d path=%s", u, v, ans.Dist, strings.Join(parts, "-")))
	case "trace":
		return sess.handleTrace(fields)
	case "batch":
		return sess.handleBatch(fields)
	case "update":
		return sess.handleUpdate(fields)
	case "snapshot":
		return sess.handleSnapshot(fields)
	default:
		return sess.respondErrf("unknown command %q (want dist|route|batch|trace|stats|update|snapshot|quit)", fields[0])
	}
}

// handleUpdate answers "update <u> <v> <add|del>": one edge mutation of
// a live graph, applied end to end (graph, spanner, backend state)
// before the response goes out — a client that sees the response line
// queries the updated state.
func (sess *session) handleUpdate(fields []string) error {
	srv := sess.srv
	if srv.up == nil {
		return sess.respondErrf("updates not supported (static graph; start the server with a dynamic engine)")
	}
	if len(fields) != 4 || (fields[3] != "add" && fields[3] != "del") {
		return sess.respondErrf(`want "update <u> <v> <add|del>"`)
	}
	u, v, err := parsePair(fields[:3])
	if err != nil {
		return sess.respondErrf("%s", err)
	}
	res, err := srv.up.Update(u, v, fields[3] == "add")
	if err != nil {
		return sess.respondErrf("%s", err)
	}
	return sess.respond(fmt.Sprintf("update %d %d %s = applied=%t rebuilt=%t m=%d hm=%d seq=%d",
		u, v, fields[3], res.Applied, res.Rebuilt, res.M, res.HM, res.Seq))
}

// handleSnapshot answers "snapshot [verify]" with the dynamic engine's
// state digest; verify asks the server to rebuild the spanner from
// scratch and report whether the maintained one matches.
func (sess *session) handleSnapshot(fields []string) error {
	srv := sess.srv
	if srv.up == nil {
		return sess.respondErrf("updates not supported (static graph; start the server with a dynamic engine)")
	}
	verify := false
	switch {
	case len(fields) == 1:
	case len(fields) == 2 && fields[1] == "verify":
		verify = true
	default:
		return sess.respondErrf(`want "snapshot [verify]"`)
	}
	info := srv.up.Snapshot(verify)
	return sess.respond(fmt.Sprintf(
		"snapshot n=%d m=%d hm=%d seq=%d ghash=%016x hhash=%016x verified=%t consistent=%t",
		info.N, info.M, info.HM, info.Seq, info.GraphHash, info.SpannerHash, info.Verified, info.Consistent))
}

// handleTrace answers "trace <u> <v>": a dist query with tracing forced
// on, returning the answer plus the hop breakdown inline. The trace also
// lands in the flight recorder (when configured), so the verb doubles as
// a way to seed /debug/requests on demand.
func (sess *session) handleTrace(fields []string) error {
	u, v, err := parsePair(fields)
	if err != nil {
		return sess.respondErrf("%s", err)
	}
	srv := sess.srv
	tr := obs.NewReqTrace(0)
	tr.SetVerb("trace", fmt.Sprintf("u=%d v=%d", u, v))
	ans, err := srv.distTrace(u, v, tr)
	if err != nil {
		tr.Finish(srv.cfg.Flight, err.Error())
		return sess.respondErrf("%s", err)
	}
	rec := tr.Finish(srv.cfg.Flight, "")
	dist := strconv.Itoa(int(ans.Dist))
	if ans.Dist == graph.Unreachable {
		dist = "unreachable"
	}
	return sess.respond(fmt.Sprintf("trace %d %d = %s %s", u, v, dist, rec.Line()))
}

// handleBatch reads n subsequent "dist <u> <v>" lines and answers them
// through the oracle's worker pool: n response lines, index-aligned with
// the input, each in the dist format without the us= field. A malformed
// batch line consumes its slot and answers "err ..." at its index without
// poisoning the rest of the batch; a dead connection mid-batch aborts
// (index alignment is unrecoverable).
func (sess *session) handleBatch(fields []string) error {
	srv := sess.srv
	if len(fields) != 2 {
		return sess.respondErrf(`want "batch <n>"`)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 1 || n > srv.cfg.MaxBatch {
		return sess.respondErrf("batch size must be in [1, %d]", srv.cfg.MaxBatch)
	}
	// Grow towards n instead of committing the full allocation up front:
	// the client has only promised n lines at this point, and a "batch
	// <max>" followed by a disconnect should cost the server nothing.
	cap0 := n
	if cap0 > 256 {
		cap0 = 256
	}
	resp := make([]string, 0, cap0) // pre-rendered errors; "" = answered by the oracle
	qs := make([]oracle.Query, 0, cap0)
	qIdx := make([]int, 0, cap0)
	limit := int32(srv.b.N())
	for i := 0; i < n; i++ {
		resp = append(resp, "")
		sess.armReadDeadline()
		line, tooLong, rerr := sess.rd.readLine()
		if tooLong {
			srv.counters.Add("toolong", 1)
			srv.counters.Add("errs", 1)
			resp[i] = fmt.Sprintf("err line too long (max %d bytes)", srv.cfg.MaxLineBytes)
			if rerr != nil {
				return rerr
			}
			continue
		}
		if rerr != nil {
			if isTimeout(rerr) && !srv.draining.Load() {
				srv.counters.Add("timeouts", 1)
				sess.respondErrf("idle timeout inside batch, closing connection")
			}
			return rerr
		}
		bf := strings.Fields(strings.TrimSpace(line))
		switch {
		case len(bf) == 0:
			resp[i] = `err empty batch line (want "dist <u> <v>")`
		case bf[0] != "dist":
			resp[i] = fmt.Sprintf("err batch lines must be dist queries, got %q", bf[0])
		default:
			u, v, perr := parsePair(bf)
			switch {
			case perr != nil:
				resp[i] = "err " + perr.Error()
			case u < 0 || v < 0 || u >= limit || v >= limit:
				// Mirror the oracle's own out-of-range error text so batch
				// answers match sequential dist answers index for index.
				resp[i] = fmt.Sprintf("err oracle: query (%d,%d) out of range [0,%d)", u, v, limit)
			default:
				qs = append(qs, oracle.Query{U: u, V: v})
				qIdx = append(qIdx, i)
			}
		}
		if resp[i] != "" {
			srv.counters.Add("errs", 1)
		}
	}
	answers, berr := srv.b.AnswerBatch(qs)
	if berr != nil {
		// A failed backend (a fleet with no live workers) still owes the
		// client its n index-aligned lines.
		srv.counters.Add("errs", int64(len(qs)))
		for _, i := range qIdx {
			resp[i] = "err " + berr.Error()
		}
	} else {
		for j, a := range answers {
			resp[qIdx[j]] = formatDist(a, -1)
		}
	}
	srv.counters.Add("batches", 1)
	srv.counters.Add("requests", int64(n)) // each batched line is a request
	for _, r := range resp {
		sess.writeLine(r)
	}
	return sess.flush()
}

// formatDist renders a dist response. Disconnected pairs answer the
// protocol word "unreachable" — the raw graph.Unreachable sentinel (-1)
// must never leak to clients — and a landmark bound that reaches no
// common landmark renders as "none". A negative elapsed omits the us=
// latency field (batch answers are timed in aggregate by the oracle).
func formatDist(a oracle.Answer, elapsed time.Duration) string {
	if a.Dist == graph.Unreachable {
		return fmt.Sprintf("dist %d %d = unreachable", a.U, a.V)
	}
	bound := strconv.Itoa(int(a.Bound))
	if a.Bound == graph.Unreachable {
		bound = "none"
	}
	s := fmt.Sprintf("dist %d %d = %d exact=%t bound=%s", a.U, a.V, a.Dist, a.Exact, bound)
	if elapsed >= 0 {
		s += fmt.Sprintf(" us=%.1f", elapsed.Seconds()*1e6)
	}
	return s
}

// parsePair parses "<cmd> <u> <v>". Vertices must fit in an int32 — the
// old strconv.Atoi path silently truncated 64-bit values on conversion.
func parsePair(fields []string) (int32, int32, error) {
	if len(fields) != 3 {
		return 0, 0, fmt.Errorf("want %q", fields[0]+" <u> <v>")
	}
	u, err1 := strconv.ParseInt(fields[1], 10, 32)
	v, err2 := strconv.ParseInt(fields[2], 10, 32)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad vertex in %v", fields[1:])
	}
	return int32(u), int32(v), nil
}
