package server

import (
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/routing"
)

// Backend is the query engine a Server fronts. The original (and still
// default) backend is a single in-process *oracle.Oracle; internal/router
// implements the same surface over a fleet of remote workers, which is
// what lets cmd/dcrouter reuse this package's whole connection layer —
// text protocol, binary protocol, limits, drain — unchanged.
type Backend interface {
	// N is the vertex count; queries must have endpoints in [0, N).
	N() int
	// Dist answers one distance query.
	Dist(u, v int32) (oracle.Answer, error)
	// Route answers one routing query. Backends that cannot route (the
	// router: paths are worker-local) return an error.
	Route(u, v int32) (routing.Path, oracle.Answer, error)
	// AnswerBatch answers qs index-aligned, mirroring oracle.AnswerBatch
	// semantics: invalid queries answer the Unreachable sentinel at their
	// index rather than failing the batch. A non-nil error means the whole
	// batch failed (e.g. every worker of a fleet is down) and no answers
	// are usable.
	AnswerBatch(qs []oracle.Query) ([]oracle.Answer, error)
	// StatsLine renders the backend's half of the stats response — the
	// oracle report, or the router's per-shard counter report — from a
	// single consistent snapshot.
	StatsLine() string
}

// TracedBackend is the optional tracing surface: a Backend that also
// implements it receives the per-request trace and annotates it with its
// own hops (oracle resolution path, router fan-out timeline). Answers
// must be identical to the untraced calls — tracing observes, never
// steers. Backends without it still serve traced requests; the trace
// just records server-side hops only.
type TracedBackend interface {
	DistTrace(u, v int32, tr *obs.ReqTrace) (oracle.Answer, error)
	AnswerBatchTrace(qs []oracle.Query, tr *obs.ReqTrace) ([]oracle.Answer, error)
}

// SnapshotStatser is the optional single-snapshot stats surface: a
// Backend whose counters live in the server's registry can render its
// StatsLine from a caller-captured snapshot, letting the server derive
// the whole stats response (backend half, server half, /metrics) from
// one capture instant.
type SnapshotStatser interface {
	StatsLineFrom(snap obs.Snapshot) string
}

// Updatable is the optional dynamic-graph surface: a Backend that also
// implements it serves the "update"/"snapshot" text verbs and the
// MsgUpdate/MsgSnap binary messages (wire v4). Backends without it
// answer those requests with a protocol error — the server always
// speaks v4, it just refuses mutations it has no engine for.
type Updatable interface {
	// Update applies one edge insert (add true) or delete to the live
	// graph, maintaining the spanner and the serving state in place.
	Update(u, v int32, add bool) (oracle.UpdateResult, error)
	// Snapshot reports the live state; verify also rebuilds the spanner
	// from scratch server-side and reports whether the maintained one
	// matches.
	Snapshot(verify bool) oracle.SnapshotInfo
}

// OracleBackend adapts *oracle.Oracle to the Backend interface. The
// oracle's own methods (N, Dist, Route, DistTrace) already match; only
// the batch/stats shapes differ.
type OracleBackend struct {
	*oracle.Oracle
}

// AnswerBatch wraps oracle.AnswerBatch, which cannot fail.
func (b OracleBackend) AnswerBatch(qs []oracle.Query) ([]oracle.Answer, error) {
	return b.Oracle.AnswerBatch(qs), nil
}

// AnswerBatchTrace wraps oracle.AnswerBatchTrace, which cannot fail.
func (b OracleBackend) AnswerBatchTrace(qs []oracle.Query, tr *obs.ReqTrace) ([]oracle.Answer, error) {
	return b.Oracle.AnswerBatchTrace(qs, tr), nil
}

// StatsLine renders the oracle's serving report.
func (b OracleBackend) StatsLine() string { return b.Oracle.Stats().String() }

// StatsLineFrom renders the oracle's serving report from an existing
// registry snapshot (the oracle registers its counters in the registry
// the server snapshots).
func (b OracleBackend) StatsLineFrom(snap obs.Snapshot) string {
	return b.Oracle.StatsFrom(snap).String()
}

// DynamicBackend adapts *oracle.Dynamic to Backend (plus the Updatable,
// TracedBackend, and SnapshotStatser capabilities) — what dcserve mounts
// under -dynamic. The Dynamic's read lock makes queries consistent
// against concurrent updates; the adapter adds nothing on top.
type DynamicBackend struct {
	*oracle.Dynamic
}

// AnswerBatch wraps oracle.Dynamic.AnswerBatch, which cannot fail.
func (b DynamicBackend) AnswerBatch(qs []oracle.Query) ([]oracle.Answer, error) {
	return b.Dynamic.AnswerBatch(qs), nil
}

// AnswerBatchTrace wraps oracle.Dynamic.AnswerBatchTrace, which cannot
// fail.
func (b DynamicBackend) AnswerBatchTrace(qs []oracle.Query, tr *obs.ReqTrace) ([]oracle.Answer, error) {
	return b.Dynamic.AnswerBatchTrace(qs, tr), nil
}

// StatsLine renders the serving oracle's report.
func (b DynamicBackend) StatsLine() string { return b.Dynamic.Stats().String() }

// StatsLineFrom renders the report from an existing registry snapshot.
func (b DynamicBackend) StatsLineFrom(snap obs.Snapshot) string {
	return b.Dynamic.Oracle().StatsFrom(snap).String()
}
