package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestWriteTraceEvents checks the Chrome trace-event JSON shape Perfetto
// expects: a traceEvents array of ph="X" complete events with
// microsecond ts/dur relative to the root, args carrying span KVs, and
// displayTimeUnit ms.
func TestWriteTraceEvents(t *testing.T) {
	root := StartSpan("build")
	c := root.Start("sample")
	c.SetKV("kept", 10)
	time.Sleep(2 * time.Millisecond)
	c.End()
	root.End()

	var b strings.Builder
	if err := WriteTraceEvents(&b, root); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, b.String())
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(out.TraceEvents))
	}
	rootEv, childEv := out.TraceEvents[0], out.TraceEvents[1]
	if rootEv.Name != "build" || childEv.Name != "sample" {
		t.Errorf("event names = %q, %q", rootEv.Name, childEv.Name)
	}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" || ev.Cat != "build" || ev.PID != 1 || ev.TID != 1 {
			t.Errorf("event header = %+v", ev)
		}
	}
	if rootEv.TS != 0 {
		t.Errorf("root ts = %v, want 0 (offsets are root-relative)", rootEv.TS)
	}
	if childEv.TS < 0 || childEv.Dur < 1000 { // slept 2ms inside the child
		t.Errorf("child ts/dur = %v/%v µs", childEv.TS, childEv.Dur)
	}
	if childEv.TS+childEv.Dur > rootEv.Dur+1 {
		t.Errorf("child [%v, %v] escapes root dur %v", childEv.TS, childEv.TS+childEv.Dur, rootEv.Dur)
	}
	if childEv.Args["kept"] != "10" {
		t.Errorf("child args = %v", childEv.Args)
	}
}

// TestWriteTraceEventsRunningSpan: an unended span renders with its
// elapsed-so-far duration rather than zero.
func TestWriteTraceEventsRunningSpan(t *testing.T) {
	root := StartSpan("build")
	time.Sleep(time.Millisecond)
	var b strings.Builder
	if err := WriteTraceEvents(&b, root); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Dur float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) != 1 || out.TraceEvents[0].Dur < 500 {
		t.Errorf("running span events = %+v", out.TraceEvents)
	}
	root.End()
}

func TestWriteTraceEventsNilRoot(t *testing.T) {
	var b strings.Builder
	if err := WriteTraceEvents(&b, nil); err == nil {
		t.Fatal("nil root accepted")
	}
	if b.Len() != 0 {
		t.Errorf("nil root wrote output: %q", b.String())
	}
}
