package obs

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"
)

// Span is one node of a build-phase trace: a named interval with
// wall-clock duration, process allocation delta, optional key/value
// payload, and child spans. Spans are created with StartSpan (a root) or
// Span.Start (a child) and closed with End.
//
// Every method is safe on a nil *Span and does nothing (Start returns
// nil), so instrumented code threads an optional span unconditionally —
// tracing off means a nil pointer and zero cost beyond the nil checks.
//
// The allocation figure is the delta of runtime.MemStats.TotalAlloc over
// the span, i.e. process-wide allocation while the span ran, not
// allocation attributable to the span's goroutine alone. For the build
// pipeline (single-threaded phases, a handful of spans) that is the
// useful number; concurrent spans double-count allocations.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	alloc    uint64 // TotalAlloc delta, set at End
	alloc0   uint64 // TotalAlloc at Start
	kv       []spanKV
	children []*Span
}

type spanKV struct {
	key   string
	value any
}

// StartSpan begins a root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now(), alloc0: totalAlloc()}
}

func totalAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// Start begins a child span. On a nil receiver it returns nil, so
// instrumentation needs no tracing-enabled check.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := StartSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its duration and allocation delta. End is
// idempotent; only the first call takes effect.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	if ta := totalAlloc(); ta >= s.alloc0 {
		s.alloc = ta - s.alloc0
	}
}

// SetKV attaches a key/value payload entry (rendered in Tree in insertion
// order; re-setting a key overwrites its value).
func (s *Span) SetKV(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.kv {
		if s.kv[i].key == key {
			s.kv[i].value = value
			return
		}
	}
	s.kv = append(s.kv, spanKV{key, value})
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the closed span's duration; a running span reports the
// elapsed time so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// AllocBytes returns the allocation delta measured at End (0 while
// running).
func (s *Span) AllocBytes() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alloc
}

// Children returns the child spans in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Tree renders the span and its descendants as an indented phase tree:
//
//	build                      41.2ms  alloc=12.4MB
//	  expander                 39.0ms  alloc=12.1MB
//	    sample                 35.1ms  alloc=11.8MB  {attempts=1, kept=13021}
//	    connectivity            3.8ms
//	  validate                  2.1ms
//
// Durations of running spans render with a trailing "+".
func (s *Span) Tree() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.tree(&b, 0, s.maxLabelWidth(0))
	return b.String()
}

// maxLabelWidth returns the widest indent+name in the subtree so the
// duration column aligns.
func (s *Span) maxLabelWidth(depth int) int {
	w := 2*depth + len(s.name)
	for _, c := range s.Children() {
		if cw := c.maxLabelWidth(depth + 1); cw > w {
			w = cw
		}
	}
	return w
}

func (s *Span) tree(b *strings.Builder, depth, width int) {
	s.mu.Lock()
	name, dur, ended, alloc := s.name, s.dur, s.ended, s.alloc
	kvs := append([]spanKV(nil), s.kv...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if !ended {
		dur = time.Since(s.start)
	}
	label := strings.Repeat("  ", depth) + name
	fmt.Fprintf(b, "%-*s  %9s", width, label, formatDuration(dur))
	if !ended {
		b.WriteByte('+')
	}
	if alloc > 0 {
		fmt.Fprintf(b, "  alloc=%s", formatBytes(alloc))
	}
	if len(kvs) > 0 {
		parts := make([]string, len(kvs))
		for i, kv := range kvs {
			parts[i] = fmt.Sprintf("%s=%v", kv.key, kv.value)
		}
		fmt.Fprintf(b, "  {%s}", strings.Join(parts, ", "))
	}
	b.WriteByte('\n')
	for _, c := range children {
		c.tree(b, depth+1, width)
	}
}

func formatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	}
	return fmt.Sprintf("%.2fs", d.Seconds())
}

func formatBytes(n uint64) string {
	const kb = 1 << 10
	switch {
	case n < kb:
		return fmt.Sprintf("%dB", n)
	case n < kb*kb:
		return fmt.Sprintf("%.1fKB", float64(n)/kb)
	case n < kb*kb*kb:
		return fmt.Sprintf("%.1fMB", float64(n)/(kb*kb))
	}
	return fmt.Sprintf("%.2fGB", float64(n)/(kb*kb*kb))
}

// KVs returns the span's payload as a key→rendered-value map
// (test/inspection hook; Tree preserves insertion order instead).
func (s *Span) KVs() map[string]string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.kv))
	for _, kv := range s.kv {
		out[kv.key] = fmt.Sprintf("%v", kv.value)
	}
	return out
}
