package obs

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"
)

// TraceRecord is one completed request trace, immutable once recorded —
// the unit the flight recorder retains and /debug/requests serves.
type TraceRecord struct {
	ID         string      `json:"id"`
	Verb       string      `json:"verb"`
	Detail     string      `json:"detail,omitempty"`
	Start      time.Time   `json:"start"`
	DurationUS float64     `json:"duration_us"`
	Path       string      `json:"path"`
	Err        string      `json:"err,omitempty"`
	Hops       []HopRecord `json:"hops"`
}

// HopRecord is one hop of a TraceRecord, offsets/durations in
// microseconds.
type HopRecord struct {
	Name     string  `json:"name"`
	OffsetUS float64 `json:"offset_us"`
	DurUS    float64 `json:"dur_us"`
	Note     string  `json:"note,omitempty"`
}

// FlightRecorder keeps the last N completed request traces plus a
// separate ring of requests slower than a threshold (the slow-query
// log), both always on. Record is lock-free — one atomic counter bump
// and one pointer store per ring — so it sits on the serving path
// without a mutex; Snapshot readers may observe a ring slot mid-update
// and simply get either the old or the new record, never a torn one.
//
// Memory is strictly bounded: recentCap+slowCap pointers plus the
// records they reference. A record costs ~200 bytes + ~80 per hop, so
// the defaults (256 recent + 64 slow, hop counts in single digits)
// hold the recorder under ~200 KiB regardless of traffic.
type FlightRecorder struct {
	recent     []atomic.Pointer[TraceRecord]
	recentNext atomic.Uint64
	slow       []atomic.Pointer[TraceRecord]
	slowNext   atomic.Uint64
	threshold  time.Duration
	recorded   atomic.Int64
}

// DefaultSlowThreshold marks a request for the slow-query ring.
const DefaultSlowThreshold = 10 * time.Millisecond

// NewFlightRecorder sizes the rings (<=0 picks 256 recent / 64 slow)
// and sets the slow-query threshold (<=0 picks DefaultSlowThreshold).
func NewFlightRecorder(recentCap, slowCap int, threshold time.Duration) *FlightRecorder {
	if recentCap <= 0 {
		recentCap = 256
	}
	if slowCap <= 0 {
		slowCap = 64
	}
	if threshold <= 0 {
		threshold = DefaultSlowThreshold
	}
	return &FlightRecorder{
		recent:    make([]atomic.Pointer[TraceRecord], recentCap),
		slow:      make([]atomic.Pointer[TraceRecord], slowCap),
		threshold: threshold,
	}
}

// Record retains a completed trace. Safe on a nil recorder or record.
func (fr *FlightRecorder) Record(rec *TraceRecord) {
	if fr == nil || rec == nil {
		return
	}
	fr.recorded.Add(1)
	fr.recent[(fr.recentNext.Add(1)-1)%uint64(len(fr.recent))].Store(rec)
	if rec.DurationUS >= float64(fr.threshold.Microseconds()) || rec.Err != "" {
		fr.slow[(fr.slowNext.Add(1)-1)%uint64(len(fr.slow))].Store(rec)
	}
}

// Recorded returns the total number of traces ever recorded.
func (fr *FlightRecorder) Recorded() int64 {
	if fr == nil {
		return 0
	}
	return fr.recorded.Load()
}

// Recent returns the retained recent traces, newest first.
func (fr *FlightRecorder) Recent() []*TraceRecord {
	if fr == nil {
		return nil
	}
	return drain(fr.recent, fr.recentNext.Load())
}

// Slow returns the retained slow/errored traces, newest first.
func (fr *FlightRecorder) Slow() []*TraceRecord {
	if fr == nil {
		return nil
	}
	return drain(fr.slow, fr.slowNext.Load())
}

func drain(ring []atomic.Pointer[TraceRecord], next uint64) []*TraceRecord {
	out := make([]*TraceRecord, 0, len(ring))
	n := uint64(len(ring))
	for i := uint64(0); i < n; i++ {
		// Walk backwards from the most recently written slot.
		rec := ring[(next+n-1-i)%n].Load()
		if rec != nil {
			out = append(out, rec)
		}
	}
	return out
}

// Threshold returns the slow-query threshold.
func (fr *FlightRecorder) Threshold() time.Duration {
	if fr == nil {
		return 0
	}
	return fr.threshold
}

// AttachMetrics exposes the recorder's volume counter on a registry.
func (fr *FlightRecorder) AttachMetrics(reg *Registry) {
	if fr == nil || reg == nil {
		return
	}
	reg.CounterFunc("obs_traces_recorded", "Request traces retained by the flight recorder.", fr.Recorded)
}

// Handler serves the recorder as JSON — the /debug/requests endpoint:
//
//	{"recorded": 812, "slow_threshold_us": 10000,
//	 "requests": [newest-first TraceRecords…],
//	 "slow": [newest-first slow/errored TraceRecords…]}
func (fr *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Best-effort debug endpoint: an encode error means the client hung
		// up mid-response, and there is no one left to tell.
		_ = enc.Encode(struct {
			Recorded        int64          `json:"recorded"`
			SlowThresholdUS int64          `json:"slow_threshold_us"`
			Requests        []*TraceRecord `json:"requests"`
			Slow            []*TraceRecord `json:"slow"`
		}{fr.Recorded(), fr.Threshold().Microseconds(), fr.Recent(), fr.Slow()})
	})
}
