package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	root := StartSpan("build")
	a := root.Start("phase-a")
	a1 := a.Start("sub-a1")
	a1.SetKV("edges", 42)
	time.Sleep(2 * time.Millisecond)
	a1.End()
	a.End()
	b := root.Start("phase-b")
	time.Sleep(1 * time.Millisecond)
	b.End()
	root.End()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "phase-a" || kids[1].Name() != "phase-b" {
		t.Fatalf("children = %v", kids)
	}
	if len(kids[0].Children()) != 1 || kids[0].Children()[0].Name() != "sub-a1" {
		t.Fatalf("grandchildren wrong")
	}
	if got := kids[0].Children()[0].KVs()["edges"]; got != "42" {
		t.Errorf("kv edges = %q, want 42", got)
	}
}

// TestSpanTimingMonotonicity: a closed parent's duration dominates each
// child and (for sequential children) approximately their sum.
func TestSpanTimingMonotonicity(t *testing.T) {
	root := StartSpan("root")
	var sum time.Duration
	for i := 0; i < 3; i++ {
		c := root.Start("child")
		time.Sleep(2 * time.Millisecond)
		c.End()
		if c.Duration() <= 0 {
			t.Fatalf("child %d duration %v not positive", i, c.Duration())
		}
		sum += c.Duration()
	}
	root.End()
	if root.Duration() < sum {
		t.Errorf("root %v < sum of children %v", root.Duration(), sum)
	}
	for _, c := range root.Children() {
		if c.Duration() > root.Duration() {
			t.Errorf("child %v exceeds parent %v", c.Duration(), root.Duration())
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	s := StartSpan("x")
	time.Sleep(time.Millisecond)
	s.End()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Errorf("second End changed duration: %v -> %v", d, s.Duration())
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	c := s.Start("child")
	if c != nil {
		t.Fatal("nil.Start returned non-nil")
	}
	s.SetKV("k", 1)
	s.End()
	if s.Duration() != 0 || s.AllocBytes() != 0 || s.Tree() != "" || s.Name() != "" {
		t.Error("nil span accessors not zero")
	}
	if s.Children() != nil || s.KVs() != nil {
		t.Error("nil span collections not nil")
	}
}

// TestSpanConcurrentChildren hammers one root from many goroutines —
// child creation, grandchildren, SetKV, End — while another goroutine
// renders Tree() mid-flight. Under -race this is the span tree's
// thread-safety proof; afterwards the child count and rendered line
// count must both be exact.
func TestSpanConcurrentChildren(t *testing.T) {
	const workers, perWorker = 8, 50
	root := StartSpan("build")

	stop := make(chan struct{})
	var render sync.WaitGroup
	render.Add(1)
	go func() {
		defer render.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = root.Tree() // racing against Start/End/SetKV
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c := root.Start("child")
				c.SetKV("worker", w)
				gc := c.Start("grandchild")
				gc.End()
				c.End()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	render.Wait()
	root.End()

	kids := root.Children()
	if len(kids) != workers*perWorker {
		t.Fatalf("children = %d, want %d", len(kids), workers*perWorker)
	}
	for _, c := range kids {
		if len(c.Children()) != 1 {
			t.Fatalf("child %q has %d grandchildren, want 1", c.Name(), len(c.Children()))
		}
	}
	lines := strings.Split(strings.TrimRight(root.Tree(), "\n"), "\n")
	if want := 1 + 2*workers*perWorker; len(lines) != want {
		t.Fatalf("tree lines = %d, want %d", len(lines), want)
	}
}

func TestTreeRendering(t *testing.T) {
	root := StartSpan("build")
	c := root.Start("sample")
	c.SetKV("kept", 10)
	c.SetKV("attempt", 1)
	c.SetKV("attempt", 2) // overwrite
	c.End()
	root.End()
	out := root.Tree()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("tree lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "build") {
		t.Errorf("root line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  sample") {
		t.Errorf("child not indented: %q", lines[1])
	}
	if !strings.Contains(lines[1], "{kept=10, attempt=2}") {
		t.Errorf("kv payload wrong: %q", lines[1])
	}
}
