package obs

// This file is the serving tier's structured logging, on stdlib
// log/slog. One process builds a single root logger (NewLogger) and each
// subsystem derives a component-scoped child (Component), so every
// record carries a `component` attribute the fleet's log pipeline can
// route on. All helpers are nil-tolerant: a nil *slog.Logger anywhere
// means "discard", which keeps tests and library defaults quiet without
// conditionals at call sites.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the process root logger writing slog text lines to w
// at the given level.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// ParseLogLevel maps a CLI flag value to a slog level. Accepts
// debug/info/warn/error in any case.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// Component derives a child logger tagged with a component attribute;
// nil in, discard logger out — callers log unconditionally.
func Component(l *slog.Logger, name string) *slog.Logger {
	if l == nil {
		return Discard()
	}
	return l.With("component", name)
}

// Discard returns a logger that drops every record (level checks short-
// circuit, so a discarded Debug costs one virtual call).
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
