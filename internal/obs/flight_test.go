package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func rec(id int, durUS float64, errMsg string) *TraceRecord {
	return &TraceRecord{
		ID:         fmt.Sprintf("%016x", id),
		Verb:       "dist",
		DurationUS: durUS,
		Path:       "bibfs",
		Err:        errMsg,
	}
}

// TestFlightRecorderRings: the recent ring wraps keeping the newest
// records (newest first on drain); the slow ring takes only
// over-threshold or errored requests.
func TestFlightRecorderRings(t *testing.T) {
	fr := NewFlightRecorder(4, 2, 10*time.Millisecond)
	for i := 1; i <= 6; i++ {
		fr.Record(rec(i, 100, "")) // fast, clean: recent ring only
	}
	fr.Record(rec(7, 20_000, ""))   // over threshold
	fr.Record(rec(8, 50, "boom"))   // errored but fast
	fr.Record(rec(9, 10_000, ""))   // exactly at threshold counts as slow
	if got := fr.Recorded(); got != 9 {
		t.Fatalf("Recorded = %d, want 9", got)
	}

	recent := fr.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent holds %d, want ring capacity 4", len(recent))
	}
	for i, wantID := range []int{9, 8, 7, 6} { // newest first
		if recent[i].ID != fmt.Sprintf("%016x", wantID) {
			t.Errorf("recent[%d] = %s, want id %d", i, recent[i].ID, wantID)
		}
	}

	slow := fr.Slow()
	if len(slow) != 2 {
		t.Fatalf("slow holds %d, want 2", len(slow))
	}
	for i, wantID := range []int{9, 8} {
		if slow[i].ID != fmt.Sprintf("%016x", wantID) {
			t.Errorf("slow[%d] = %s, want id %d", i, slow[i].ID, wantID)
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(rec(1, 1, ""))
	fr.Record(nil)
	if fr.Recorded() != 0 || fr.Recent() != nil || fr.Slow() != nil || fr.Threshold() != 0 {
		t.Error("nil recorder accessors not zero")
	}
	NewFlightRecorder(0, 0, 0).Record(nil) // nil record on a live recorder
}

func TestFlightRecorderDefaults(t *testing.T) {
	fr := NewFlightRecorder(0, 0, 0)
	if len(fr.recent) != 256 || len(fr.slow) != 64 {
		t.Errorf("default rings = %d/%d, want 256/64", len(fr.recent), len(fr.slow))
	}
	if fr.Threshold() != DefaultSlowThreshold {
		t.Errorf("default threshold = %v", fr.Threshold())
	}
}

// TestFlightRecorderConcurrent is the lock-free claim under -race: many
// writers recording while readers drain and scrape.
func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(8, 4, time.Millisecond)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				fr.Record(rec(w*perWorker+i, float64(i), ""))
				if i%50 == 0 {
					_ = fr.Recent()
					_ = fr.Slow()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := fr.Recorded(); got != workers*perWorker {
		t.Fatalf("Recorded = %d, want %d", got, workers*perWorker)
	}
	if got := len(fr.Recent()); got != 8 {
		t.Fatalf("recent holds %d, want 8", got)
	}
}

// TestFlightRecorderHandler checks the /debug/requests JSON shape.
func TestFlightRecorderHandler(t *testing.T) {
	fr := NewFlightRecorder(4, 2, 10*time.Millisecond)
	fr.Record(&TraceRecord{
		ID: "00000000000000aa", Verb: "batch", Detail: "n=16",
		DurationUS: 25_000, Path: "cache|bulk",
		Hops: []HopRecord{{Name: "queue", OffsetUS: 0, DurUS: 3}, {Name: "oracle", OffsetUS: 3, DurUS: 24_900, Note: "arm=bulk"}},
	})
	w := httptest.NewRecorder()
	fr.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/requests", nil))
	if ct := w.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	var body struct {
		Recorded        int64          `json:"recorded"`
		SlowThresholdUS int64          `json:"slow_threshold_us"`
		Requests        []*TraceRecord `json:"requests"`
		Slow            []*TraceRecord `json:"slow"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, w.Body.String())
	}
	if body.Recorded != 1 || body.SlowThresholdUS != 10_000 {
		t.Errorf("recorded/threshold = %d/%d", body.Recorded, body.SlowThresholdUS)
	}
	if len(body.Requests) != 1 || len(body.Slow) != 1 {
		t.Fatalf("requests/slow = %d/%d, want 1/1", len(body.Requests), len(body.Slow))
	}
	got := body.Requests[0]
	if got.Verb != "batch" || got.Path != "cache|bulk" || len(got.Hops) != 2 || got.Hops[1].Note != "arm=bulk" {
		t.Errorf("round-tripped record = %+v", got)
	}
}

func TestFlightRecorderAttachMetrics(t *testing.T) {
	fr := NewFlightRecorder(4, 2, 0)
	reg := NewRegistry()
	fr.AttachMetrics(reg)
	fr.Record(rec(1, 1, ""))
	fr.Record(rec(2, 1, ""))
	if got := reg.Snapshot().Counters["obs_traces_recorded"]; got != 2 {
		t.Errorf("obs_traces_recorded = %d, want 2", got)
	}
	var nilFR *FlightRecorder
	nilFR.AttachMetrics(reg) // must not register or panic
	fr.AttachMetrics(nil)
}
