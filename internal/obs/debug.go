package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// NewDebugMux builds the debug endpoint's handler tree:
//
//	/metrics         Prometheus text exposition of reg
//	/healthz         "ok" once the process is serving
//	/debug/requests  the flight recorder's recent + slow traces (JSON;
//	                 only when fr is non-nil)
//	/debug/pprof/    the standard net/http/pprof handlers
func NewDebugMux(reg *Registry, fr *FlightRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// The response is already partially written; nothing to do but
			// drop the connection.
			return
		}
	})
	if fr != nil {
		mux.Handle("/debug/requests", fr.Handler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP endpoint.
type DebugServer struct {
	srv *http.Server
	lis net.Listener
}

// ServeDebug listens on addr (":0" picks a free port) and serves the
// debug mux in a background goroutine. fr may be nil (no
// /debug/requests endpoint). The caller owns the returned server and
// should Close it on shutdown.
func ServeDebug(addr string, reg *Registry, fr *FlightRecorder) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}
	srv := &http.Server{
		Handler:           NewDebugMux(reg, fr),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go srv.Serve(lis) //nolint:errcheck // returns ErrServerClosed on Close
	return &DebugServer{srv: srv, lis: lis}, nil
}

// Addr returns the bound address (host:port).
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close shuts the endpoint down immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }

// RegisterProcessMetrics adds the Go runtime gauges/counters every
// long-running binary wants on /metrics: goroutine count, heap size,
// cumulative allocation, GC cycles, and GOMAXPROCS.
func RegisterProcessMetrics(reg *Registry) {
	reg.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_gomaxprocs", "GOMAXPROCS at scrape time.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	reg.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.CounterFunc("go_alloc_bytes", "Cumulative bytes allocated for heap objects.",
		func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.TotalAlloc)
		})
	reg.CounterFunc("go_gc_cycles", "Completed GC cycles.",
		func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.NumGC)
		})
}
