// Package obs is the repository's telemetry subsystem: a metrics
// Registry of named counters, gauges, and histograms with Prometheus
// text-format exposition (registry.go, this file), nestable build-phase
// spans (trace.go), and a debug HTTP server wiring /metrics, /healthz,
// and net/http/pprof together (debug.go). It is stdlib-only and builds on
// the lock-free primitives of internal/stats, so instrumented hot paths
// pay one atomic op per event.
//
// One Registry is intended to be process-wide: cmd/dcserve creates a
// single Registry and the oracle, the serving layer, and the Go runtime
// metrics all register into it, so the wire `stats` response, the
// /metrics endpoint, and the demo summary render from one consistent
// snapshot. Libraries take a *Registry (nil means "create a private
// one") rather than sharing a package-level default, so tests can hold
// many instances without name collisions.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Counter is a monotonically increasing metric owned by a Registry.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; negative deltas are a programming error and
// are ignored to keep the counter monotonic.
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a settable instantaneous metric owned by a Registry.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// Exemplar is an optional trace-id attachment for a histogram: the last
// sampled observation's trace id and value, rendered after the +Inf
// bucket in the exposition (OpenMetrics-style `# {trace_id="…"} v`).
// Store is one atomic pointer swap; an Exemplar is nil-safe so unsampled
// hot paths skip it entirely.
type Exemplar struct{ p atomic.Pointer[exemplarSample] }

type exemplarSample struct {
	traceID uint64
	value   float64
}

// Observe records the observation value for trace id — the latest sample
// wins, which is all an exemplar needs to make a histogram bucket
// clickable back to a concrete trace.
func (e *Exemplar) Observe(traceID uint64, v float64) {
	if e == nil {
		return
	}
	e.p.Store(&exemplarSample{traceID: traceID, value: v})
}

// metric is one registered entry: a read function for scalar kinds, the
// histogram itself for kindHistogram. labels is the pre-rendered
// inside-the-braces label text (`dir="up"`), empty for plain metrics.
type metric struct {
	name, labels, help string
	kind               metricKind
	readInt            func() int64
	readFloat          func() float64
	hist               *stats.Histogram
	ex                 *Exemplar
}

// key is the registration key: name plus the label set, so the same
// family name may carry several label values.
func (m *metric) key() string {
	if m.labels == "" {
		return m.name
	}
	return m.name + "{" + m.labels + "}"
}

// Registry is a named-metric table safe for concurrent registration,
// observation, and export. Metric names are frozen at registration
// (duplicates panic — a programming error, matching stats.NewCounters)
// and exported in sorted order so the Prometheus text rendering is stable.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// register validates and stores m; it panics on duplicate or invalid
// names (labels distinguish entries within one family).
func (r *Registry) register(m *metric) {
	if !validMetricName(m.name) {
		panic("obs: invalid metric name " + strconv.Quote(m.name))
	}
	key := m.key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[key]; dup {
		panic("obs: duplicate metric " + key)
	}
	r.metrics[key] = m
}

// renderLabels builds the inside-the-braces label text for one
// key/value pair, escaping the value per the exposition format.
func renderLabels(label, value string) string {
	if !validMetricName(label) {
		panic("obs: invalid label name " + strconv.Quote(label))
	}
	v := strings.ReplaceAll(value, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return label + `="` + v + `"`
}

// validMetricName reports whether name matches the Prometheus metric name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Counter creates, registers, and returns a new owned counter. The
// exported sample name carries the conventional _total suffix, which
// callers must not include in name.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, readInt: c.Load})
	return c
}

// CounterFunc registers a counter whose value is produced by fn at
// export/snapshot time — the adapter for pre-existing atomics (the
// oracle's query counters, cache hit counts).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(&metric{name: name, help: help, kind: kindCounter, readInt: fn})
}

// CounterLabeled creates a counter under name with one label pair, so a
// family like router_worker_transitions can split into dir="up" /
// dir="down" series. The family's HELP/TYPE header is emitted once.
func (r *Registry) CounterLabeled(name, help, label, value string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, labels: renderLabels(label, value), help: help,
		kind: kindCounter, readInt: c.Load})
	return c
}

// CounterFuncLabeled is CounterFunc with one label pair.
func (r *Registry) CounterFuncLabeled(name, help, label, value string, fn func() int64) {
	r.register(&metric{name: name, labels: renderLabels(label, value), help: help,
		kind: kindCounter, readInt: fn})
}

// Gauge creates, registers, and returns a new owned gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, readFloat: g.Load})
	return g
}

// GaugeFunc registers a gauge read from fn at export/snapshot time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, readFloat: fn})
}

// GaugeFuncLabeled is GaugeFunc with one label pair — the shape behind
// info-style gauges like oracle_backend_info{backend="..."} 1.
func (r *Registry) GaugeFuncLabeled(name, help, label, value string, fn func() float64) {
	r.register(&metric{name: name, labels: renderLabels(label, value), help: help,
		kind: kindGauge, readFloat: fn})
}

// Histogram creates, registers, and returns a new histogram with the
// given bucket upper bounds (see stats.NewHistogram).
func (r *Registry) Histogram(name, help string, bounds []float64) *stats.Histogram {
	h := stats.NewHistogram(bounds)
	r.RegisterHistogram(name, help, h)
	return h
}

// RegisterHistogram adopts an existing stats.Histogram — the path by
// which the oracle's latency histograms join the registry without being
// rebuilt.
func (r *Registry) RegisterHistogram(name, help string, h *stats.Histogram) {
	if h == nil {
		panic("obs: RegisterHistogram with nil histogram")
	}
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
}

// HistogramExemplar creates and registers a histogram with an attached
// exemplar slot: observations go to the histogram as usual, and sampled
// requests additionally call Exemplar.Observe with their trace id so the
// exposition links the latency distribution to a concrete recent trace.
func (r *Registry) HistogramExemplar(name, help string, bounds []float64) (*stats.Histogram, *Exemplar) {
	h := stats.NewHistogram(bounds)
	ex := &Exemplar{}
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h, ex: ex})
	return h, ex
}

// AttachCounters registers every counter of a stats.Counters set as
// prefix_<name>, reading through Snapshot order. The serving layer uses
// this to expose its request/error counters without changing its hot
// path.
func (r *Registry) AttachCounters(prefix string, c *stats.Counters) {
	for _, cv := range c.Snapshot() {
		name := cv.Name
		r.CounterFunc(prefix+"_"+name, "Counter "+name+" of the "+prefix+" set.",
			func() int64 { return c.Get(name) })
	}
}

// snapEntry is one metric's point-in-time value plus the metadata needed
// to render it, captured by Snapshot.
type snapEntry struct {
	name, labels, help string
	kind               metricKind
	intVal             int64
	floatVal           float64
	hist               stats.HistogramBuckets
	ex                 *exemplarSample
}

// Snapshot is a point-in-time read of every registered metric: each
// scalar loaded exactly once, each histogram captured via
// stats.Histogram.Buckets (itself internally consistent). Derived ratios
// computed from one Snapshot therefore agree with each other, and
// WritePrometheus renders from the same capture — so a scrape, the text
// `stats` verb, and any report derived from one Snapshot all describe
// the same instant. Labeled series appear in the maps under
// `name{label="value"}` keys.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]stats.HistogramBuckets

	entries []snapEntry // sorted by (name, labels); drives WritePrometheus
}

// Snapshot captures all metrics.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]stats.HistogramBuckets),
	}
	r.mu.RLock()
	s.entries = make([]snapEntry, 0, len(r.metrics))
	for key, m := range r.metrics {
		e := snapEntry{name: m.name, labels: m.labels, help: m.help, kind: m.kind}
		switch m.kind {
		case kindCounter:
			e.intVal = m.readInt()
			s.Counters[key] = e.intVal
		case kindGauge:
			e.floatVal = m.readFloat()
			s.Gauges[key] = e.floatVal
		case kindHistogram:
			e.hist = m.hist.Buckets()
			s.Histograms[key] = e.hist
			if m.ex != nil {
				e.ex = m.ex.p.Load()
			}
		}
		s.entries = append(s.entries, e)
	}
	r.mu.RUnlock()
	sort.Slice(s.entries, func(i, j int) bool {
		if s.entries[i].name != s.entries[j].name {
			return s.entries[i].name < s.entries[j].name
		}
		return s.entries[i].labels < s.entries[j].labels
	})
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4) from one Snapshot, so every sample in the
// scrape was read at the same instant.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders the snapshot: HELP/TYPE headers once per
// family, counters suffixed _total, histograms as cumulative _bucket
// series with le labels plus _sum and _count, families sorted by name
// and label sets within a family sorted lexically. A histogram with a
// captured exemplar renders it OpenMetrics-style after its +Inf bucket.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	prevFamily := ""
	for _, e := range s.entries {
		switch e.kind {
		case kindCounter:
			name := e.name + "_total"
			if name != prevFamily {
				writeHeader(&b, name, e.help, "counter")
				prevFamily = name
			}
			fmt.Fprintf(&b, "%s %d\n", name+braced(e.labels), e.intVal)
		case kindGauge:
			if e.name != prevFamily {
				writeHeader(&b, e.name, e.help, "gauge")
				prevFamily = e.name
			}
			fmt.Fprintf(&b, "%s %s\n", e.name+braced(e.labels), formatSample(e.floatVal))
		case kindHistogram:
			if e.name != prevFamily {
				writeHeader(&b, e.name, e.help, "histogram")
				prevFamily = e.name
			}
			bk := e.hist
			for i, bound := range bk.Bounds {
				fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", e.name, labelPrefix(e.labels), formatSample(bound), bk.Cumulative[i])
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=\"+Inf\"} %d", e.name, labelPrefix(e.labels), bk.Count)
			if e.ex != nil {
				fmt.Fprintf(&b, " # {trace_id=\"%016x\"} %s", e.ex.traceID, formatSample(e.ex.value))
			}
			b.WriteByte('\n')
			fmt.Fprintf(&b, "%s_sum%s %s\n", e.name, braced(e.labels), formatSample(bk.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", e.name, braced(e.labels), bk.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// braced wraps non-empty label text in braces for a sample name.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// labelPrefix renders labels for merging with a bucket's le label.
func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// writeHeader emits the # HELP / # TYPE pair with help-text escaping per
// the exposition format (backslash and newline).
func writeHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatSample renders a float64 the way Prometheus clients expect:
// shortest round-trip decimal, +Inf/-Inf/NaN spelled out.
func formatSample(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
