// Package obs is the repository's telemetry subsystem: a metrics
// Registry of named counters, gauges, and histograms with Prometheus
// text-format exposition (registry.go, this file), nestable build-phase
// spans (trace.go), and a debug HTTP server wiring /metrics, /healthz,
// and net/http/pprof together (debug.go). It is stdlib-only and builds on
// the lock-free primitives of internal/stats, so instrumented hot paths
// pay one atomic op per event.
//
// One Registry is intended to be process-wide: cmd/dcserve creates a
// single Registry and the oracle, the serving layer, and the Go runtime
// metrics all register into it, so the wire `stats` response, the
// /metrics endpoint, and the demo summary render from one consistent
// snapshot. Libraries take a *Registry (nil means "create a private
// one") rather than sharing a package-level default, so tests can hold
// many instances without name collisions.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Counter is a monotonically increasing metric owned by a Registry.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; negative deltas are a programming error and
// are ignored to keep the counter monotonic.
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a settable instantaneous metric owned by a Registry.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered entry: a read function for scalar kinds, the
// histogram itself for kindHistogram.
type metric struct {
	name, help string
	kind       metricKind
	readInt    func() int64
	readFloat  func() float64
	hist       *stats.Histogram
}

// Registry is a named-metric table safe for concurrent registration,
// observation, and export. Metric names are frozen at registration
// (duplicates panic — a programming error, matching stats.NewCounters)
// and exported in sorted order so the Prometheus text rendering is stable.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// register validates and stores m; it panics on duplicate or invalid
// names.
func (r *Registry) register(m *metric) {
	if !validMetricName(m.name) {
		panic("obs: invalid metric name " + strconv.Quote(m.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[m.name]; dup {
		panic("obs: duplicate metric " + m.name)
	}
	r.metrics[m.name] = m
}

// validMetricName reports whether name matches the Prometheus metric name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Counter creates, registers, and returns a new owned counter. The
// exported sample name carries the conventional _total suffix, which
// callers must not include in name.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, readInt: c.Load})
	return c
}

// CounterFunc registers a counter whose value is produced by fn at
// export/snapshot time — the adapter for pre-existing atomics (the
// oracle's query counters, cache hit counts).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(&metric{name: name, help: help, kind: kindCounter, readInt: fn})
}

// Gauge creates, registers, and returns a new owned gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, readFloat: g.Load})
	return g
}

// GaugeFunc registers a gauge read from fn at export/snapshot time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, readFloat: fn})
}

// Histogram creates, registers, and returns a new histogram with the
// given bucket upper bounds (see stats.NewHistogram).
func (r *Registry) Histogram(name, help string, bounds []float64) *stats.Histogram {
	h := stats.NewHistogram(bounds)
	r.RegisterHistogram(name, help, h)
	return h
}

// RegisterHistogram adopts an existing stats.Histogram — the path by
// which the oracle's latency histograms join the registry without being
// rebuilt.
func (r *Registry) RegisterHistogram(name, help string, h *stats.Histogram) {
	if h == nil {
		panic("obs: RegisterHistogram with nil histogram")
	}
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
}

// AttachCounters registers every counter of a stats.Counters set as
// prefix_<name>, reading through Snapshot order. The serving layer uses
// this to expose its request/error counters without changing its hot
// path.
func (r *Registry) AttachCounters(prefix string, c *stats.Counters) {
	for _, cv := range c.Snapshot() {
		name := cv.Name
		r.CounterFunc(prefix+"_"+name, "Counter "+name+" of the "+prefix+" set.",
			func() int64 { return c.Get(name) })
	}
}

// Snapshot is a point-in-time read of every registered metric: each
// scalar loaded exactly once, each histogram captured via
// stats.Histogram.Buckets (itself internally consistent). Derived ratios
// computed from one Snapshot therefore agree with each other.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]stats.HistogramBuckets
}

// Snapshot captures all metrics.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]stats.HistogramBuckets),
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, m := range r.metrics {
		switch m.kind {
		case kindCounter:
			s.Counters[name] = m.readInt()
		case kindGauge:
			s.Gauges[name] = m.readFloat()
		case kindHistogram:
			s.Histograms[name] = m.hist.Buckets()
		}
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, counters suffixed _total,
// histograms as cumulative _bucket series with le labels plus _sum and
// _count, all families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	ordered := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ordered = append(ordered, m)
	}
	r.mu.RUnlock()
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].name < ordered[j].name })

	var b strings.Builder
	for _, m := range ordered {
		switch m.kind {
		case kindCounter:
			name := m.name + "_total"
			writeHeader(&b, name, m.help, "counter")
			fmt.Fprintf(&b, "%s %d\n", name, m.readInt())
		case kindGauge:
			writeHeader(&b, m.name, m.help, "gauge")
			fmt.Fprintf(&b, "%s %s\n", m.name, formatSample(m.readFloat()))
		case kindHistogram:
			writeHeader(&b, m.name, m.help, "histogram")
			bk := m.hist.Buckets()
			for i, bound := range bk.Bounds {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatSample(bound), bk.Cumulative[i])
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, bk.Count)
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, formatSample(bk.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, bk.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHeader emits the # HELP / # TYPE pair with help-text escaping per
// the exposition format (backslash and newline).
func writeHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatSample renders a float64 the way Prometheus clients expect:
// shortest round-trip decimal, +Inf/-Inf/NaN spelled out.
func formatSample(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
