package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// traceEvent is one Chrome trace-event ("X" = complete event): what
// chrome://tracing and Perfetto load. Timestamps and durations are
// microseconds; pid/tid are synthetic (one process, one track).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTraceEvents renders a span tree in the Chrome trace-event JSON
// format, offsets relative to the root's start — `dcspan -trace-out
// build.json` produces a file Perfetto opens directly. Running spans
// render with their elapsed-so-far duration.
func WriteTraceEvents(w io.Writer, root *Span) error {
	if root == nil {
		return fmt.Errorf("obs: WriteTraceEvents on nil span")
	}
	var events []traceEvent
	collectEvents(&events, root, root.start)
	out := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

func collectEvents(events *[]traceEvent, s *Span, epoch time.Time) {
	s.mu.Lock()
	name, start, dur, ended, alloc := s.name, s.start, s.dur, s.ended, s.alloc
	kvs := append([]spanKV(nil), s.kv...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if !ended {
		dur = time.Since(start)
	}
	ev := traceEvent{
		Name: name,
		Cat:  "build",
		Ph:   "X",
		TS:   us(start.Sub(epoch)),
		Dur:  us(dur),
		PID:  1,
		TID:  1,
	}
	if alloc > 0 || len(kvs) > 0 {
		ev.Args = make(map[string]any, len(kvs)+1)
		if alloc > 0 {
			ev.Args["alloc_bytes"] = alloc
		}
		for _, kv := range kvs {
			ev.Args[kv.key] = fmt.Sprintf("%v", kv.value)
		}
	}
	*events = append(*events, ev)
	for _, c := range children {
		collectEvents(events, c, epoch)
	}
}
