package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPathString(t *testing.T) {
	cases := []struct {
		mask uint8
		want string
	}{
		{0, "none"},
		{PathCache, "cache"},
		{PathLandmark, "landmark"},
		{PathBiBFS, "bibfs"},
		{PathBulk, "bulk"},
		{PathCache | PathBiBFS, "cache|bibfs"},
		{PathCache | PathLandmark | PathBiBFS | PathBulk, "cache|landmark|bibfs|bulk"},
	}
	for _, c := range cases {
		if got := PathString(c.mask); got != c.want {
			t.Errorf("PathString(%#x) = %q, want %q", c.mask, got, c.want)
		}
	}
}

func TestNewTraceIDUniqueNonzero(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("NewTraceID returned 0 (the untraced sentinel)")
		}
		if seen[id] {
			t.Fatalf("NewTraceID repeated %x", id)
		}
		seen[id] = true
	}
}

// TestNilReqTraceSafe: every method must no-op on nil — the unsampled
// hot path threads a nil trace unconditionally.
func TestNilReqTraceSafe(t *testing.T) {
	var tr *ReqTrace
	tr.SetVerb("dist", "u=1 v=2")
	tr.Hop("queue", time.Now(), "")
	tr.Event("retry", "")
	tr.OrPath(PathCache)
	if tr.ID() != 0 || tr.Path() != 0 || tr.Hops() != nil || !tr.Start().IsZero() {
		t.Error("nil trace accessors not zero")
	}
	if rec := tr.Finish(NewFlightRecorder(4, 2, 0), "x"); rec != nil {
		t.Error("nil trace Finish returned a record")
	}
}

func TestReqTraceLifecycle(t *testing.T) {
	tr := NewReqTrace(0x42)
	if tr.ID() != 0x42 {
		t.Fatalf("continued id = %x, want 42", tr.ID())
	}
	tr.SetVerb("batch", "n=16")
	h0 := time.Now()
	time.Sleep(time.Millisecond)
	tr.Hop("queue", h0, "")
	tr.Event("retry", "chunk=0 worker=1")
	tr.OrPath(PathCache)
	tr.OrPath(PathBulk)
	if tr.Path() != PathCache|PathBulk {
		t.Fatalf("path = %#x", tr.Path())
	}

	fr := NewFlightRecorder(4, 2, time.Hour)
	rec := tr.Finish(fr, "")
	if rec == nil {
		t.Fatal("Finish returned nil")
	}
	if rec.ID != "0000000000000042" || rec.Verb != "batch" || rec.Detail != "n=16" {
		t.Errorf("record header = %q %q %q", rec.ID, rec.Verb, rec.Detail)
	}
	if rec.Path != "cache|bulk" {
		t.Errorf("record path = %q", rec.Path)
	}
	if len(rec.Hops) != 2 || rec.Hops[0].Name != "queue" || rec.Hops[1].Name != "retry" {
		t.Fatalf("hops = %+v", rec.Hops)
	}
	if rec.Hops[0].DurUS < 500 {
		t.Errorf("queue hop %vµs, slept 1ms", rec.Hops[0].DurUS)
	}
	if rec.Hops[1].DurUS != 0 || rec.Hops[1].Note != "chunk=0 worker=1" {
		t.Errorf("event hop = %+v", rec.Hops[1])
	}
	if rec.DurationUS < rec.Hops[0].DurUS {
		t.Errorf("total %vµs below queue hop %vµs", rec.DurationUS, rec.Hops[0].DurUS)
	}
	if got := fr.Recent(); len(got) != 1 || got[0] != rec {
		t.Error("Finish did not land the record in the recorder")
	}

	line := rec.Line()
	for _, want := range []string{"id=0000000000000042", "path=cache|bulk", "queue +", "retry +", "(chunk=0 worker=1)"} {
		if !strings.Contains(line, want) {
			t.Errorf("Line() misses %q: %s", want, line)
		}
	}
	if strings.Contains(line, "err=") {
		t.Errorf("clean trace rendered an err: %s", line)
	}
}

func TestReqTraceFreshIDAndErr(t *testing.T) {
	tr := NewReqTrace(0)
	if tr.ID() == 0 {
		t.Fatal("fresh trace got id 0")
	}
	rec := tr.Finish(nil, "worker lost") // nil recorder: record still returned
	if rec == nil || rec.Err != "worker lost" {
		t.Fatalf("errored record = %+v", rec)
	}
	if !strings.Contains(rec.Line(), `err="worker lost"`) {
		t.Errorf("Line() misses err: %s", rec.Line())
	}
	// An errored record goes to the slow ring regardless of duration.
	fr := NewFlightRecorder(4, 2, time.Hour)
	fr.Record(rec)
	if len(fr.Slow()) != 1 {
		t.Error("errored record missed the slow ring")
	}
}

// TestReqTraceConcurrent mirrors the router's fan-out: shard goroutines
// appending hops and ORing path bits into one trace. Run under -race.
func TestReqTraceConcurrent(t *testing.T) {
	tr := NewReqTrace(0)
	const shards = 8
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Hop("shard", time.Now(), "")
				tr.OrPath(1 << (uint(s) % 4))
			}
		}(s)
	}
	wg.Wait()
	if got := len(tr.Hops()); got != shards*100 {
		t.Fatalf("hops = %d, want %d", got, shards*100)
	}
	if tr.Path() != PathCache|PathLandmark|PathBiBFS|PathBulk {
		t.Fatalf("path = %#x", tr.Path())
	}
}
