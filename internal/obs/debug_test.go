package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("oracle_dist_queries", "Dist queries answered.").Add(5)
	RegisterProcessMetrics(reg)
	fr := NewFlightRecorder(0, 0, 0)
	fr.Record(&TraceRecord{ID: "00000000000000ab", Verb: "dist", Path: "bibfs"})
	ts := httptest.NewServer(NewDebugMux(reg, fr))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"oracle_dist_queries_total 5",
		"# TYPE go_goroutines gauge",
		"go_alloc_bytes_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	code, body = get("/debug/requests")
	if code != 200 {
		t.Fatalf("/debug/requests = %d", code)
	}
	for _, want := range []string{`"recorded": 1`, `"00000000000000ab"`, `"verb": "dist"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/requests missing %q in %s", want, body)
		}
	}
}

func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	ds, err := ServeDebug("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}
