package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Resolution-path bits: how the oracle answered a query. A request trace
// ORs the bit of every path its queries took, so a batch that mixed
// cache hits with bidirectional searches reports both. The mask travels
// in v3 wire response flags (see internal/wire.ResponseContext), which
// is why it must stay within six bits — the flags byte spends one bit on
// sampling and reserves the top bit.
const (
	PathCache uint8 = 1 << iota // sharded-LRU cache hit (landmark-bibfs backend)
	PathLandmark                // landmark upper bound was tight enough
	PathBiBFS                   // bounded bidirectional BFS
	PathBulk                    // bulk multi-source BFS sweep (batch arm)
	PathExact                   // precomputed all-pairs table (exact-cached backend)
	PathHub                     // hub bunch hit or hub upper bound (sparse-hub backend)
)

// PathString renders a path mask ("cache|bibfs"; "none" for zero).
func PathString(mask uint8) string {
	if mask == 0 {
		return "none"
	}
	var parts []string
	for _, p := range [...]struct {
		bit  uint8
		name string
	}{{PathCache, "cache"}, {PathLandmark, "landmark"}, {PathBiBFS, "bibfs"}, {PathBulk, "bulk"},
		{PathExact, "exact"}, {PathHub, "hub"}} {
		if mask&p.bit != 0 {
			parts = append(parts, p.name)
		}
	}
	return strings.Join(parts, "|")
}

// traceIDCounter seeds NewTraceID; mixed through splitmix64 so ids look
// random (useful as sampling keys) while never colliding in-process.
var traceIDCounter atomic.Uint64

func init() {
	traceIDCounter.Store(uint64(time.Now().UnixNano()))
}

// NewTraceID returns a process-unique 64-bit trace id.
func NewTraceID() uint64 {
	x := traceIDCounter.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1 // 0 means "untraced" on the wire
	}
	return x
}

// Hop is one completed stage of a request: where time went, as an offset
// from the request's start plus a duration, with an optional note
// ("n=512 arm=bulk", "q=171 try=0").
type Hop struct {
	Name   string
	Offset time.Duration
	Dur    time.Duration
	Note   string
}

// ReqTrace accumulates the hop breakdown of one in-flight request.
// Every method is safe on a nil receiver and does nothing, so the
// serving hot path threads a trace unconditionally: unsampled requests
// carry a nil pointer and pay only the nil checks.
//
// A trace is written by the goroutines a request fans out to (router
// shards append hops concurrently), hence the mutex; the path mask is a
// separate atomic so oracle workers can OR into it without contending on
// hop appends.
type ReqTrace struct {
	id    uint64
	start time.Time
	path  atomic.Uint32

	mu     sync.Mutex
	verb   string
	detail string
	hops   []Hop
}

// NewReqTrace starts a trace. id 0 allocates a fresh trace id; a nonzero
// id continues a trace started by an upstream process (the wire carries
// it).
func NewReqTrace(id uint64) *ReqTrace {
	if id == 0 {
		id = NewTraceID()
	}
	return &ReqTrace{id: id, start: time.Now()}
}

// ID returns the trace id (0 on nil).
func (tr *ReqTrace) ID() uint64 {
	if tr == nil {
		return 0
	}
	return tr.id
}

// Start returns the trace's start instant.
func (tr *ReqTrace) Start() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return tr.start
}

// SetVerb labels the trace with the request verb and a short detail
// ("batch", "n=512").
func (tr *ReqTrace) SetVerb(verb, detail string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.verb, tr.detail = verb, detail
	tr.mu.Unlock()
}

// Hop records a stage that began at start and ends now.
func (tr *ReqTrace) Hop(name string, start time.Time, note string) {
	if tr == nil {
		return
	}
	now := time.Now()
	tr.mu.Lock()
	tr.hops = append(tr.hops, Hop{Name: name, Offset: start.Sub(tr.start), Dur: now.Sub(start), Note: note})
	tr.mu.Unlock()
}

// Event records an instantaneous occurrence (a retry, a health flip seen
// mid-request) as a zero-duration hop at the current offset.
func (tr *ReqTrace) Event(name, note string) {
	if tr == nil {
		return
	}
	now := time.Now()
	tr.mu.Lock()
	tr.hops = append(tr.hops, Hop{Name: name, Offset: now.Sub(tr.start), Note: note})
	tr.mu.Unlock()
}

// OrPath merges resolution-path bits into the trace's mask.
func (tr *ReqTrace) OrPath(mask uint8) {
	if tr == nil || mask == 0 {
		return
	}
	for {
		old := tr.path.Load()
		if old|uint32(mask) == old || tr.path.CompareAndSwap(old, old|uint32(mask)) {
			return
		}
	}
}

// Path returns the accumulated resolution-path mask.
func (tr *ReqTrace) Path() uint8 {
	if tr == nil {
		return 0
	}
	return uint8(tr.path.Load())
}

// Hops returns a copy of the recorded hops in append order.
func (tr *ReqTrace) Hops() []Hop {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]Hop(nil), tr.hops...)
}

// Finish closes the trace into an immutable record and hands it to the
// flight recorder (fr may be nil — the record is still returned, which
// is what the `trace` verb renders inline). errMsg is empty for
// successful requests.
func (tr *ReqTrace) Finish(fr *FlightRecorder, errMsg string) *TraceRecord {
	if tr == nil {
		return nil
	}
	total := time.Since(tr.start)
	tr.mu.Lock()
	rec := &TraceRecord{
		ID:         fmt.Sprintf("%016x", tr.id),
		Verb:       tr.verb,
		Detail:     tr.detail,
		Start:      tr.start,
		DurationUS: us(total),
		Path:       PathString(uint8(tr.path.Load())),
		Err:        errMsg,
		Hops:       make([]HopRecord, len(tr.hops)),
	}
	for i, h := range tr.hops {
		rec.Hops[i] = HopRecord{Name: h.Name, OffsetUS: us(h.Offset), DurUS: us(h.Dur), Note: h.Note}
	}
	tr.mu.Unlock()
	fr.Record(rec)
	return rec
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// Line renders a completed record as one text-protocol-friendly line:
//
//	id=9a… path=bibfs total=812.4µs hops=[queue +0µs/31µs; oracle +32µs/700µs …]
func (r *TraceRecord) Line() string {
	var b strings.Builder
	fmt.Fprintf(&b, "id=%s path=%s total=%.1fµs hops=[", r.ID, r.Path, r.DurationUS)
	for i, h := range r.Hops {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s +%.1fµs/%.1fµs", h.Name, h.OffsetUS, h.DurUS)
		if h.Note != "" {
			fmt.Fprintf(&b, " (%s)", h.Note)
		}
	}
	b.WriteString("]")
	if r.Err != "" {
		fmt.Fprintf(&b, " err=%q", r.Err)
	}
	return b.String()
}
