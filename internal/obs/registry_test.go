package obs

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/stats"
)

// TestPrometheusGolden pins the exposition format: sorted families,
// HELP escaping, _total suffix on counters, _bucket/_sum/_count on
// histograms with cumulative le series.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("zeta_requests", "Requests with a\nnewline and back\\slash.")
	c.Add(3)
	g := reg.Gauge("alpha_temperature", "A gauge.")
	g.Set(1.5)
	h := reg.Histogram("mid_latency_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5) // overflow

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP alpha_temperature A gauge.
# TYPE alpha_temperature gauge
alpha_temperature 1.5
# HELP mid_latency_seconds A histogram.
# TYPE mid_latency_seconds histogram
mid_latency_seconds_bucket{le="0.1"} 1
mid_latency_seconds_bucket{le="1"} 3
mid_latency_seconds_bucket{le="+Inf"} 4
mid_latency_seconds_sum 6.05
mid_latency_seconds_count 4
# HELP zeta_requests_total Requests with a\nnewline and back\\slash.
# TYPE zeta_requests_total counter
zeta_requests_total 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusExemplarGolden pins the trace-aware exposition pieces:
// a histogram's captured exemplar renders OpenMetrics-style after its
// +Inf bucket with the zero-padded hex trace id, and a labeled counter
// family emits one HELP/TYPE header with label sets sorted lexically.
func TestPrometheusExemplarGolden(t *testing.T) {
	reg := NewRegistry()
	h, ex := reg.HistogramExemplar("stage_seconds", "A stage histogram.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(2)
	ex.Observe(0xabc123, 2)
	up := reg.CounterLabeled("worker_transitions", "Worker health transitions, by direction.", "dir", "up")
	down := reg.CounterLabeled("worker_transitions", "Worker health transitions, by direction.", "dir", "down")
	up.Add(3)
	down.Inc()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP stage_seconds A stage histogram.
# TYPE stage_seconds histogram
stage_seconds_bucket{le="0.5"} 1
stage_seconds_bucket{le="1"} 1
stage_seconds_bucket{le="+Inf"} 2 # {trace_id="0000000000abc123"} 2
stage_seconds_sum 2.25
stage_seconds_count 2
# HELP worker_transitions_total Worker health transitions, by direction.
# TYPE worker_transitions_total counter
worker_transitions_total{dir="down"} 1
worker_transitions_total{dir="up"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Before any sampled observation the exemplar slot is empty and the
	// +Inf line must stay plain.
	reg2 := NewRegistry()
	h2, _ := reg2.HistogramExemplar("quiet_seconds", "", []float64{1})
	h2.Observe(0.5)
	var b2 strings.Builder
	if err := reg2.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b2.String(), "trace_id") {
		t.Errorf("empty exemplar rendered:\n%s", b2.String())
	}
}

func TestCounterMonotonic(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c", "")
	c.Add(5)
	c.Add(-3) // ignored
	c.Inc()
	if got := c.Load(); got != 6 {
		t.Errorf("counter = %d, want 6", got)
	}
}

func TestDuplicateAndInvalidNamesPanic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup", "")
	mustPanic(t, "duplicate", func() { reg.Gauge("dup", "") })
	mustPanic(t, "invalid name", func() { reg.Counter("bad-name", "") })
	mustPanic(t, "empty name", func() { reg.Counter("", "") })
	mustPanic(t, "leading digit", func() { reg.Counter("0abc", "") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestAttachCounters(t *testing.T) {
	reg := NewRegistry()
	cs := stats.NewCounters("requests", "errs")
	cs.Add("requests", 7)
	reg.AttachCounters("server", cs)
	cs.Add("errs", 2)

	snap := reg.Snapshot()
	if snap.Counters["server_requests"] != 7 || snap.Counters["server_errs"] != 2 {
		t.Errorf("attached counters = %v", snap.Counters)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "server_requests_total 7") {
		t.Errorf("missing server_requests_total:\n%s", b.String())
	}
}

// TestConcurrentRegisterObserveExport hammers a registry from many
// goroutines — registration, counter/gauge/histogram traffic, snapshots,
// and exposition all at once — and then checks the final totals. Run
// under -race this is the registry's thread-safety proof.
func TestConcurrentRegisterObserveExport(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hot_counter", "")
	g := reg.Gauge("hot_gauge", "")
	h := reg.Histogram("hot_hist", "", stats.ExpBuckets(1, 2, 10))

	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	names := []string{"wa", "wb", "wc", "wd", "we", "wf", "wg_", "wh"}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One fresh registration per goroutine, racing the observers.
			reg.CounterFunc(names[w], "", func() int64 { return 1 })
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 7))
				if i%100 == 0 {
					_ = reg.Snapshot()
					var b strings.Builder
					if err := reg.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["hot_counter"]; got != workers*perWorker {
		t.Errorf("hot_counter = %d, want %d", got, workers*perWorker)
	}
	hb := snap.Histograms["hot_hist"]
	if hb.Count != workers*perWorker {
		t.Errorf("hist count = %d, want %d", hb.Count, workers*perWorker)
	}
	if hb.Cumulative[len(hb.Cumulative)-1] != hb.Count {
		t.Errorf("cumulative tail %d != count %d", hb.Cumulative[len(hb.Cumulative)-1], hb.Count)
	}
	for w := range names {
		if snap.Counters[names[w]] != 1 {
			t.Errorf("missing concurrent registration %s", names[w])
		}
	}
}

func TestSnapshotConsistency(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("hh", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 9} {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	hb := snap.Histograms["hh"]
	wantCum := []int64{1, 2, 3, 4}
	for i, w := range wantCum {
		if hb.Cumulative[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, hb.Cumulative[i], w)
		}
	}
	if hb.Sum != 14 || hb.Max != 9 || hb.Count != 4 {
		t.Errorf("sum/max/count = %v/%v/%v", hb.Sum, hb.Max, hb.Count)
	}
	if q := hb.Quantile(1); q != 9 {
		t.Errorf("p100 = %v, want max 9", q)
	}
}
