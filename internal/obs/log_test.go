package obs

import (
	"log/slog"
	"strings"
	"testing"
)

func TestParseLogLevel(t *testing.T) {
	cases := []struct {
		in   string
		want slog.Level
	}{
		{"debug", slog.LevelDebug},
		{"info", slog.LevelInfo},
		{"", slog.LevelInfo},
		{"  Warn ", slog.LevelWarn},
		{"WARNING", slog.LevelWarn},
		{"error", slog.LevelError},
	}
	for _, c := range cases {
		got, err := ParseLogLevel(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil || !strings.Contains(err.Error(), "loud") {
		t.Errorf("bad level err = %v", err)
	}
}

func TestNewLoggerLevelAndText(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, slog.LevelWarn)
	l.Info("hidden", "k", 1)
	l.Warn("shown", "worker", 3)
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info leaked through a warn-level logger:\n%s", out)
	}
	if !strings.Contains(out, "msg=shown") || !strings.Contains(out, "worker=3") {
		t.Errorf("warn record malformed:\n%s", out)
	}
}

func TestComponentTagsRecords(t *testing.T) {
	var b strings.Builder
	l := Component(NewLogger(&b, slog.LevelInfo), "router")
	l.Info("worker down", "worker", 1, "reason", "dial failed")
	out := b.String()
	for _, want := range []string{"component=router", "msg=\"worker down\"", "reason=\"dial failed\""} {
		if !strings.Contains(out, want) {
			t.Errorf("record misses %q:\n%s", want, out)
		}
	}
}

// TestComponentNilDiscards: nil in, discard logger out — call sites log
// unconditionally, so the returned logger must be non-nil and silent.
func TestComponentNilDiscards(t *testing.T) {
	l := Component(nil, "server")
	if l == nil {
		t.Fatal("Component(nil) returned nil")
	}
	l.Debug("a")
	l.Info("b")
	l.Error("c") // nothing to assert beyond "does not panic"
	if l.Enabled(nil, slog.LevelError) {
		t.Error("discard logger claims to be enabled")
	}
	d := Discard().With("k", 1).WithGroup("g")
	d.Error("still silent")
	if d.Enabled(nil, slog.LevelError) {
		t.Error("derived discard logger claims to be enabled")
	}
}
