package dcspanner

import (
	"testing"
)

// Tests of the public facade: the end-to-end flows a downstream user
// would run, exercised through the re-exported API only.

func TestFacadeQuickstartFlow(t *testing.T) {
	g := MustRandomRegular(216, 60, 1)
	dc, err := Build(g, Options{
		Algorithm: AlgoExpander,
		Seed:      1,
		Expander:  ExpanderOptions{EnsureConnected: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dc.Graph().M() >= g.M() {
		t.Fatal("spanner did not sparsify")
	}
	rep := VerifyEdgeStretch(g, dc.Graph(), 3)
	if rep.Violations != 0 {
		t.Fatalf("stretch violations: %+v", rep)
	}
	prob := RandomProblem(g.N(), 50, 2)
	onG, onH, err := dc.RouteProblem(prob)
	if err != nil {
		t.Fatal(err)
	}
	res := MeasureStretch(g.N(), onG, onH)
	if res.DistanceStretch > 3 {
		t.Fatalf("distance stretch %v > 3", res.DistanceStretch)
	}
	if res.CongestionStretch < 1 {
		t.Fatalf("congestion stretch %v < 1?", res.CongestionStretch)
	}
}

func TestFacadeRegularFlow(t *testing.T) {
	g := MustRandomRegular(216, 40, 3)
	dc, err := Build(g, Options{Algorithm: AlgoRegular, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyEdgeStretch(g, dc.Graph(), 3)
	if rep.Violations != 0 {
		t.Fatalf("stretch violations: %+v", rep)
	}
	prob := RandomMatchingProblem(g.N(), 40, 5)
	onG, onH, err := dc.RouteProblem(prob)
	if err != nil {
		t.Fatal(err)
	}
	res := MeasureStretch(g.N(), onG, onH)
	if res.DistanceStretch > 3 {
		t.Fatalf("matching distance stretch %v > 3", res.DistanceStretch)
	}
}

func TestFacadeBuilders(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	if g.M() != 3 {
		t.Fatalf("builder produced %d edges", g.M())
	}
	if m := Margulis(6); !m.Connected() {
		t.Fatal("Margulis expander disconnected")
	}
	if _, err := RandomRegular(5, 3, 1); err == nil {
		t.Fatal("accepted odd n·d")
	}
	perm := RandomPermutationProblem(30, 6)
	if err := perm.Validate(30); err != nil {
		t.Fatal(err)
	}
}
