// Package dcspanner is the public facade of the DC-spanner library — a
// reproduction of "Sparse Spanners with Small Distance and Congestion
// Stretches" (Busch, Kowalski, Robinson; SPAA 2024).
//
// A DC-spanner of a graph G is a spanning subgraph H that simultaneously
// controls two stretches for every routing problem: the distance stretch α
// (each substitute path is at most α times longer) and the congestion
// stretch β (the substitute routing's maximum node congestion is at most β
// times the original's). This package re-exports the library's public
// surface; the implementations live in the internal packages:
//
//	internal/graph      graph substrate (CSR adjacency, BFS, parallel sweeps)
//	internal/gen        generators incl. every paper construction
//	internal/spectral   expansion certification (power iteration, mixing)
//	internal/matching   Hopcroft–Karp, Misra–Gries edge coloring
//	internal/routing    congestion, Algorithm 2 matching decomposition
//	internal/spanner    Theorem 2, Algorithm 1, baselines, verifiers
//	internal/core       the DC-spanner API tying it all together
//	internal/local      LOCAL-model simulator, Corollary 3
//	internal/lowerbound Lemma 18 / Theorem 4 / Figure 1 / Lemma 2 witnesses
//	internal/experiments the Table 1 + figures reproduction harness
//
// Quickstart:
//
//	g := dcspanner.MustRandomRegular(512, 96, 1)            // a dense expander
//	dc, err := dcspanner.Build(g, dcspanner.Options{
//		Algorithm: dcspanner.AlgoExpander, Seed: 1,
//	})
//	// dc.Graph() is a 3-distance spanner with ~n^{5/3} edges.
//	prob := dcspanner.RandomProblem(g.N(), 100, 2)
//	onG, onH, err := dc.RouteProblem(prob)                  // Theorem 1 pipeline
//	res := dcspanner.MeasureStretch(g.N(), onG, onH)        // realized (α, β)
package dcspanner

import (
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/packetsim"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spanner"
)

// Core re-exports.
type (
	// Graph is an immutable undirected simple graph.
	Graph = graph.Graph
	// Edge is an undirected edge with U < V after normalization.
	Edge = graph.Edge
	// Builder accumulates edges into a Graph.
	Builder = graph.Builder

	// Options configures Build.
	Options = core.Options
	// Algorithm selects a spanner construction.
	Algorithm = core.Algorithm
	// DCSpanner is a built spanner with substitute-routing machinery.
	DCSpanner = core.DCSpanner
	// StretchResult reports the realized (α, β) of a substitute routing.
	StretchResult = core.StretchResult

	// Problem is a routing problem (source–destination pairs).
	Problem = routing.Problem
	// Pair is one source–destination request.
	Pair = routing.Pair
	// Path is a vertex sequence.
	Path = routing.Path
	// Routing is a set of paths answering a Problem.
	Routing = routing.Routing

	// StretchReport summarizes a distance-stretch verification.
	StretchReport = spanner.StretchReport
	// ExpanderOptions configures the Theorem 2 construction.
	ExpanderOptions = spanner.ExpanderOptions
	// RegularOptions configures Algorithm 1.
	RegularOptions = spanner.RegularOptions
)

// Algorithms.
const (
	AlgoExpander        = core.AlgoExpander
	AlgoRegular         = core.AlgoRegular
	AlgoBaswanaSen      = core.AlgoBaswanaSen
	AlgoGreedy          = core.AlgoGreedy
	AlgoSparsifyUniform = core.AlgoSparsifyUniform
	AlgoBoundedDegree   = core.AlgoBoundedDegree
)

// Build constructs a DC-spanner of g. See core.Build.
func Build(g *Graph, opts Options) (*DCSpanner, error) { return core.Build(g, opts) }

// MeasureStretch computes the (α, β) realized by a substitute routing.
func MeasureStretch(n int, orig, sub *Routing) StretchResult {
	return core.MeasureStretch(n, orig, sub)
}

// NewBuilder creates a graph builder on n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// RandomRegular samples a random d-regular simple graph.
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	return gen.RandomRegular(n, d, rng.New(seed))
}

// MustRandomRegular is RandomRegular that panics on error.
func MustRandomRegular(n, d int, seed uint64) *Graph {
	return gen.MustRandomRegular(n, d, rng.New(seed))
}

// Margulis returns the explicit Margulis–Gabber–Galil expander on m²
// vertices.
func Margulis(m int) *Graph { return gen.Margulis(m) }

// Paley returns the Paley graph on a prime q ≡ 1 (mod 4): a deterministic
// (q−1)/2-regular expander with spectral expansion exactly (√q+1)/2.
func Paley(q int) (*Graph, error) { return gen.Paley(q) }

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *Graph { return gen.Hypercube(d) }

// Clique returns the complete graph K_n.
func Clique(n int) *Graph { return gen.Clique(n) }

// RandomProblem samples k random source–destination pairs on n vertices.
func RandomProblem(n, k int, seed uint64) Problem {
	return routing.RandomProblem(n, k, rng.New(seed))
}

// RandomMatchingProblem samples a matching routing problem with k pairs.
func RandomMatchingProblem(n, k int, seed uint64) Problem {
	return routing.RandomMatchingProblem(n, k, rng.New(seed))
}

// RandomPermutationProblem builds a permutation routing problem.
func RandomPermutationProblem(n int, seed uint64) Problem {
	return routing.RandomPermutationProblem(n, rng.New(seed))
}

// VerifyEdgeStretch certifies h as an alpha-distance spanner of g by
// checking every edge of g has a ≤alpha-hop substitute in h.
func VerifyEdgeStretch(g, h *Graph, alpha int) StretchReport {
	return spanner.VerifyEdgeStretch(g, h, alpha)
}

// MinCongestion computes a routing for prob that approximately minimizes
// the node congestion C(P) — the paper's C(R) (Section 2) — via
// exponential-potential rerouting.
func MinCongestion(g *Graph, prob Problem, seed uint64) (*Routing, error) {
	return routing.MinCongestion(g, prob, routing.MinCongestionOptions{Seed: seed})
}

// Oracle re-exports: the concurrent DC-spanner query engine serving
// point-to-point Dist/Route queries with realized-stretch accounting.
// Distance resolution is pluggable (OracleOptions.Backend): the default
// landmark-bibfs engine (landmark tables + bounded bidirectional BFS +
// sharded LRU cache), an exact all-pairs table for small graphs, a
// stretch-3 hub/bunch structure for sparse graphs, or "auto" to
// benchmark them at startup and serve the fastest within budget.
type (
	// Oracle answers distance and route queries over a DC-spanner.
	Oracle = oracle.Oracle
	// OracleOptions configures NewOracle.
	OracleOptions = oracle.Options
	// OracleQuery is one point-to-point distance request.
	OracleQuery = oracle.Query
	// OracleAnswer is the oracle's reply to a query.
	OracleAnswer = oracle.Answer
	// OracleStats snapshots the oracle's serving metrics.
	OracleStats = oracle.Stats
)

// Oracle backend names for OracleOptions.Backend (see the oracle package
// for each engine's space/query-time/stretch contract).
const (
	// OracleBackendLandmarkBiBFS is the default landmark + bidirectional
	// BFS engine: exact on the spanner, O(k·n) space.
	OracleBackendLandmarkBiBFS = oracle.BackendLandmarkBiBFS
	// OracleBackendExactCached precomputes the all-pairs table: O(n²)
	// space, O(1) exact queries — the small-graph choice.
	OracleBackendExactCached = oracle.BackendExactCached
	// OracleBackendSparseHub is the hub/bunch structure: ~O(n^{3/2})
	// space, O(√n) queries within stretch 3 — the sparse-graph choice.
	OracleBackendSparseHub = oracle.BackendSparseHub
	// OracleBackendAuto benchmarks every backend at startup on a sampled
	// query mix and serves the fastest within the memory budget.
	OracleBackendAuto = oracle.BackendAuto
)

// NewOracle builds a concurrent query oracle over a built DC-spanner:
//
//	o, err := dcspanner.NewOracle(dc, dcspanner.OracleOptions{})
//	ans, err := o.Dist(3, 77)            // exact-on-spanner distance
//	answers := o.AnswerBatch(queries)    // all cores, scheduling-independent
//	path, ans, err := o.Route(3, 77)     // substitute path + congestion accounting
func NewOracle(dc *DCSpanner, opts OracleOptions) (*Oracle, error) {
	return oracle.New(dc, opts)
}

// SimulatePackets runs the store-and-forward packet schedule (one packet
// forwarded per node per step, the Section 1.1 model) for a routing and
// returns makespan / latency / queue statistics.
func SimulatePackets(n int, rt *Routing) (*packetsim.Result, error) {
	return packetsim.Simulate(n, rt, packetsim.Options{Priority: packetsim.FarthestToGo})
}

// PacketResult re-exports the simulator's result type.
type PacketResult = packetsim.Result
