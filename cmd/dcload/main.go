// Command dcload drives a dcserve or dcrouter endpoint at load over the
// binary wire protocol and reports latency quantiles and throughput.
//
// Two loop modes:
//
//   - Closed loop (default, -rate 0): -conns connections each keep one
//     request in flight back to back; latency is pure service time and
//     throughput is what the target sustains at that concurrency.
//   - Open loop (-rate R): requests are paced at R requests/second
//     across the connection pool, and each request's latency is measured
//     from its *intended* start time, so queueing delay when the target
//     falls behind is charged to the target (no coordinated omission).
//
// The workload mixes batch sizes via -batch "size:weight,..." (size 1 is
// sent as a single dist frame, larger sizes as batch frames) and draws
// query endpoints from a Zipf(s) distribution over the target's vertex
// set (-zipf 0 is uniform) — skew concentrates load on hot vertices the
// way real traffic does, which exercises worker caches.
//
// Example:
//
//	dcload -addr 127.0.0.1:7070 -duration 10s -conns 8 -batch 1:1,16:1 -zipf 0.9
//
// Against a dynamic target (dcserve -dynamic), -updates R mixes edge
// mutations into the run: one dedicated connection issues R seeded
// insert/delete updates per second — a single connection so the mutation
// order (and thus the server's end state) is deterministic for a given
// seed — while the query pool races it. The run then closes with a
// verify snapshot and prints an "update consistency:" line; an
// inconsistent spanner (maintained != rebuilt from scratch) exits 1.
//
// dcload exits 1 if the run answers zero requests (the e2e smoke's
// assertion) or if more than 1% of requests error.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "target address (dcserve or dcrouter)")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	conns := flag.Int("conns", 4, "connection pool size (closed loop: in-flight requests)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in requests/sec (0 = closed loop)")
	zipfS := flag.Float64("zipf", 0, "Zipf skew of query endpoints (0 = uniform)")
	batchMix := flag.String("batch", "1:3,16:1", "batch-size mix as size:weight,...")
	seed := flag.Uint64("seed", 1, "workload RNG seed")
	traceN := flag.Int("trace", 0, "request sampling of every Nth request (sets the wire v3 sampling bit; 0 disables)")
	updRate := flag.Float64("updates", 0, "edge mutations/sec on one dedicated connection (wire v4; needs a dynamic target)")
	flag.Parse()

	mix, err := parseMix(*batchMix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcload:", err)
		os.Exit(2)
	}
	if *conns < 1 {
		fmt.Fprintln(os.Stderr, "dcload: -conns must be >= 1")
		os.Exit(2)
	}

	// One probe connection discovers the serving shape.
	probe, err := wire.Dial(*addr, wire.ClientOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcload:", err)
		os.Exit(1)
	}
	info, err := probe.Info()
	probe.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcload: info:", err)
		os.Exit(1)
	}
	if maxSize := mix.maxSize(); maxSize > info.MaxBatch {
		fmt.Fprintf(os.Stderr, "dcload: batch size %d exceeds the target's limit %d\n", maxSize, info.MaxBatch)
		os.Exit(2)
	}
	mode := "closed"
	if *rate > 0 {
		mode = fmt.Sprintf("open @ %.0f req/s", *rate)
	}
	fmt.Printf("target %s: n=%d maxbatch=%d | %s loop, %d conns, mix %s, zipf=%.2f, %v\n",
		*addr, info.N, info.MaxBatch, mode, *conns, *batchMix, *zipfS, *duration)

	clients := make([]*wire.Client, *conns)
	for i := range clients {
		c, err := wire.Dial(*addr, wire.ClientOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcload: conn %d: %v\n", i, err)
			os.Exit(1)
		}
		defer c.Close()
		clients[i] = c
	}

	// The update stream gets its own dedicated connection: mutations on a
	// single pipelined connection apply in issue order, so the server's
	// end state is a deterministic function of (seed, rate, duration)
	// regardless of how the query pool is scheduled.
	var updConn *wire.Client
	var updSent, updApplied, updRebuilt, updErrs atomic.Int64
	if *updRate > 0 {
		updConn, err = wire.Dial(*addr, wire.ClientOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcload: update conn:", err)
			os.Exit(1)
		}
		defer updConn.Close()
		if updConn.Version() < 4 {
			fmt.Fprintf(os.Stderr, "dcload: -updates needs wire v4, target negotiated v%d\n", updConn.Version())
			os.Exit(2)
		}
	}

	lat := stats.NewLatencyHistogram()
	var answered, queries, errs, sent, traced atomic.Int64
	zipf := rng.NewZipf(*zipfS, info.N)
	deadline := time.Now().Add(*duration)

	// run issues one request on c and records it; latency is measured
	// from t0 (the intended start in open loop, the actual start in
	// closed loop). Every -trace'th request carries the wire sampling
	// bit; the server answers with the sampled bit set when it traced the
	// request (a v2 target never does — the trace field doesn't survive
	// the downgrade).
	run := func(c *wire.Client, r *rng.RNG, t0 time.Time) {
		size := mix.pick(r)
		var tc wire.TraceContext
		if *traceN > 0 && sent.Add(1)%int64(*traceN) == 0 {
			tc = wire.SampledContext(obs.NewTraceID())
		}
		var rtc wire.TraceContext
		var err error
		if size == 1 {
			_, rtc, err = c.DistTraced(int32(zipf.Sample(r)), int32(zipf.Sample(r)), tc)
		} else {
			qs := make([]oracle.Query, size)
			for i := range qs {
				qs[i] = oracle.Query{U: int32(zipf.Sample(r)), V: int32(zipf.Sample(r))}
			}
			_, rtc, err = c.BatchTraced(qs, tc)
		}
		if err != nil {
			errs.Add(1)
			return
		}
		if rtc.Sampled() {
			traced.Add(1)
		}
		lat.Observe(time.Since(t0).Seconds())
		answered.Add(1)
		queries.Add(int64(size))
	}

	start := time.Now()
	var wg sync.WaitGroup
	if updConn != nil {
		// Paced updater. Endpoints are uniform (not Zipf): skewed
		// mutations would make the server's end state depend on the
		// query-skew knob. Self-pairs are skipped, not redrawn, so the
		// mutation sequence stays aligned with the tick count.
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rng.New(*seed ^ 0xa5a5c3c3d1d1b7b7)
			interval := time.Duration(float64(time.Second) / *updRate)
			next := time.Now()
			for next.Before(deadline) {
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				next = next.Add(interval)
				u, v := int32(r.Intn(info.N)), int32(r.Intn(info.N))
				if u == v {
					continue
				}
				res, uerr := updConn.Update(u, v, r.Bernoulli(0.5))
				updSent.Add(1)
				if uerr != nil {
					updErrs.Add(1)
					fmt.Fprintln(os.Stderr, "dcload: update:", uerr)
					return
				}
				if res.Applied {
					updApplied.Add(1)
				}
				if res.Rebuilt {
					updRebuilt.Add(1)
				}
			}
		}()
	}
	if *rate <= 0 {
		// Closed loop: each connection back to back.
		for i, c := range clients {
			wg.Add(1)
			go func(i int, c *wire.Client) {
				defer wg.Done()
				r := rng.New(*seed + uint64(i)*0x9e3779b97f4a7c15)
				for time.Now().Before(deadline) {
					if !c.Healthy() {
						return
					}
					run(c, r, time.Now())
				}
			}(i, c)
		}
	} else {
		// Open loop: a pacer hands intended-start ticks to the pool.
		interval := time.Duration(float64(time.Second) / *rate)
		ticks := make(chan time.Time, 4**conns)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(ticks)
			next := time.Now()
			for next.Before(deadline) {
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				select {
				case ticks <- next:
				default:
					// The pool is saturated and the queue is full: the
					// request is dropped as an error — unbounded queues
					// would just hide the overload.
					errs.Add(1)
				}
				next = next.Add(interval)
			}
		}()
		for i, c := range clients {
			wg.Add(1)
			go func(i int, c *wire.Client) {
				defer wg.Done()
				r := rng.New(*seed + uint64(i)*0x9e3779b97f4a7c15)
				for t0 := range ticks {
					if !c.Healthy() {
						return
					}
					run(c, r, t0)
				}
			}(i, c)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	b := lat.Buckets()
	n := answered.Load()
	fmt.Printf("answered %d requests (%d queries) with %d errors in %v\n", n, queries.Load(), errs.Load(), elapsed.Round(time.Millisecond))
	if *traceN > 0 {
		fmt.Printf("traced: %d requests confirmed sampled by the target\n", traced.Load())
	}
	fmt.Printf("throughput: %.0f req/s, %.0f queries/s\n",
		float64(n)/elapsed.Seconds(), float64(queries.Load())/elapsed.Seconds())
	fmt.Printf("latency: p50=%s p95=%s p99=%s p999=%s max=%s mean=%s\n",
		ms(b.Quantile(0.50)), ms(b.Quantile(0.95)), ms(b.Quantile(0.99)),
		ms(b.Quantile(0.999)), ms(b.Max), ms(b.Mean()))

	if updConn != nil {
		si, serr := updConn.Snap(true)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "dcload: verify snapshot:", serr)
			os.Exit(1)
		}
		fmt.Printf("updates: sent=%d applied=%d rebuilt=%d errs=%d\n",
			updSent.Load(), updApplied.Load(), updRebuilt.Load(), updErrs.Load())
		fmt.Printf("update consistency: seq=%d m=%d hm=%d verified=%t consistent=%t\n",
			si.Seq, si.M, si.HM, si.Verified, si.Consistent)
		if !si.Consistent {
			fmt.Fprintln(os.Stderr, "dcload: maintained spanner diverged from a from-scratch rebuild")
			os.Exit(1)
		}
		if updErrs.Load() > 0 {
			os.Exit(1)
		}
	}

	if n == 0 {
		fmt.Fprintln(os.Stderr, "dcload: zero answered requests")
		os.Exit(1)
	}
	if e := errs.Load(); e*100 > (n + e) {
		fmt.Fprintf(os.Stderr, "dcload: error rate %.1f%% exceeds 1%%\n", 100*float64(e)/float64(n+e))
		os.Exit(1)
	}
}

func ms(sec float64) string {
	switch {
	case sec >= 1:
		return fmt.Sprintf("%.2fs", sec)
	case sec >= 1e-3:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.1fµs", sec*1e6)
	}
}

// sizeMix is a weighted batch-size distribution.
type sizeMix struct {
	sizes  []int
	cum    []int // cumulative weights
	weight int
}

func parseMix(s string) (*sizeMix, error) {
	m := &sizeMix{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sz, wt, ok := strings.Cut(part, ":")
		size, err1 := strconv.Atoi(sz)
		weight := 1
		var err2 error
		if ok {
			weight, err2 = strconv.Atoi(wt)
		}
		if err1 != nil || err2 != nil || size < 1 || weight < 1 {
			return nil, fmt.Errorf("bad -batch entry %q (want size:weight with both >= 1)", part)
		}
		m.sizes = append(m.sizes, size)
		m.weight += weight
		m.cum = append(m.cum, m.weight)
	}
	if len(m.sizes) == 0 {
		return nil, fmt.Errorf("empty -batch mix")
	}
	return m, nil
}

func (m *sizeMix) pick(r *rng.RNG) int {
	w := r.Intn(m.weight)
	i := sort.SearchInts(m.cum, w+1)
	return m.sizes[i]
}

func (m *sizeMix) maxSize() int {
	max := 0
	for _, s := range m.sizes {
		if s > max {
			max = s
		}
	}
	return max
}
