// Command dcspan builds a DC-spanner of a generated graph and reports its
// size, certified distance stretch, and matching-routing congestion.
//
// Usage:
//
//	dcspan -gen regular -n 512 -d 96 -algo expander -seed 1
//	dcspan -gen margulis -n 1024 -algo baswana-sen -k 3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spanner"
	"repro/internal/spectral"
)

func main() {
	cfg := cliutil.RegisterGraphFlags(flag.CommandLine, "regular", 512, 96, 1)
	algo := flag.String("algo", "expander", "spanner: expander|regular|baswana-sen|greedy|sparsify-uniform|bounded-degree")
	k := flag.Int("k", 2, "Baswana-Sen parameter (stretch 2k-1)")
	alpha := flag.Int("alpha", 3, "greedy spanner stretch / verification stretch")
	certify := flag.Bool("certify", false, "measure spectral expansion of G and H")
	backend := flag.String("oracle-backend", "",
		"also build a distance oracle over H with this backend (landmark-bibfs|exact-cached|sparse-hub|auto) and report its tuner/contract line; empty skips")
	out := flag.String("out", "", "write the spanner to this file")
	format := flag.String("format", "edgelist", "output format: edgelist|dot|spannerdot")
	trace := flag.Bool("trace", false, "print the construction phase tree (wall clock, allocations, per-phase payloads)")
	traceOut := flag.String("trace-out", "", "write the construction phase tree as Chrome trace-event JSON to this file (load in Perfetto / chrome://tracing)")
	prof := cliutil.RegisterProfileFlags(flag.CommandLine)
	flag.Parse()
	defer prof.MustStart()()
	seed := &cfg.Seed

	g := cfg.MustBuild()
	fmt.Printf("G: n=%d m=%d maxDeg=%d connected=%v\n", g.N(), g.M(), g.MaxDegree(), g.Connected())

	var root *obs.Span
	if *trace || *traceOut != "" {
		root = obs.StartSpan("build")
	}
	dc, err := core.Build(g, core.Options{
		Algorithm: core.Algorithm(*algo),
		Seed:      *seed,
		K:         *k,
		Alpha:     *alpha,
		Expander:  spanner.ExpanderOptions{EnsureConnected: true},
		Trace:     root,
	})
	root.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if root != nil && *trace {
		fmt.Print(root.Tree())
	}
	if *traceOut != "" {
		f, ferr := os.Create(*traceOut)
		if ferr == nil {
			ferr = obs.WriteTraceEvents(f, root)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "trace-out:", ferr)
			os.Exit(1)
		}
		fmt.Printf("phase trace written to %s\n", *traceOut)
	}
	h := dc.Graph()
	fmt.Printf("H (%s): m=%d (%.1f%% of G), maxDeg=%d\n",
		*algo, h.M(), 100*float64(h.M())/float64(g.M()), h.MaxDegree())

	verifyAlpha := *alpha
	if *algo == "baswana-sen" {
		verifyAlpha = 2**k - 1
	}
	rep := dc.VerifyDistance(verifyAlpha)
	fmt.Printf("distance stretch ≤ %d: violations=%d maxStretch=%v meanStretch=%.3f\n",
		verifyAlpha, rep.Violations, rep.MaxStretch, rep.MeanStretch)

	// Matching routing over G's edges.
	used := make([]bool, g.N())
	var m []graph.Edge
	for _, e := range g.Edges() {
		if !used[e.U] && !used[e.V] {
			used[e.U] = true
			used[e.V] = true
			m = append(m, e)
		}
	}
	router := dc.Spanner().Router(*seed + 100)
	paths, err := router.RouteMatching(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rt := &routing.Routing{Problem: routing.MatchingProblem(m), Paths: paths}
	fmt.Printf("matching routing: %d pairs, node congestion %d (identity=%d, 3-detours=%d, 2-detours=%d, fallbacks=%d)\n",
		len(m), rt.NodeCongestion(g.N()), router.Identity, router.Detour3, router.Detour2, router.Fallbacks)

	if *backend != "" {
		o, err := oracle.New(dc, oracle.Options{Backend: *backend})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if rep := o.TunerReport(); rep != nil {
			fmt.Printf("oracle tuner:\n%s", rep)
		}
		bs := o.BackendStats()
		fmt.Printf("oracle: backend=%s stretch-bound=%d mem=%.1fKiB landmarks=%d\n",
			bs.Name, bs.StretchBound, float64(bs.MemoryBytes)/1024, len(o.Landmarks()))
	}

	if *certify {
		r := rng.New(*seed + 7)
		lamG, l1G := spectral.Expansion(g, 300, r)
		lamH, l1H := spectral.Expansion(h, 300, r)
		fmt.Printf("expansion: G λ=%.2f (λ1=%.2f)   H λ=%.2f (λ1=%.2f)\n", lamG, l1G, lamH, l1H)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		switch *format {
		case "edgelist":
			err = graphio.WriteEdgeList(f, h)
		case "dot":
			err = graphio.WriteDOT(f, h, *algo)
		case "spannerdot":
			err = graphio.WriteSpannerDOT(f, g, h, *algo)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s)\n", *out, *format)
	}
}
