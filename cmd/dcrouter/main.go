// Command dcrouter fronts a fleet of dcserve workers: it speaks both
// serving protocols (the text line protocol and the binary wire v2
// protocol) on one listen address and fans the work across workers over
// pooled, pipelined binary connections. Workers are replicas — each holds
// the full oracle — so any query can go to any worker; batches split into
// contiguous chunks, one per healthy worker, and merge back in request
// order. Worker death is absorbed by retrying chunks on survivors.
//
// Two ways to get a fleet:
//
//	dcrouter -spawn 4 -listen :7070        # 4 in-process workers (one
//	                                       # graph + spanner built once,
//	                                       # one oracle replica per worker)
//	dcrouter -connect host1:7070,host2:7070 -listen :7070
//	                                       # external dcserve processes
//
// The debug sidecar (-debug-addr) exposes router_* counters, per-shard
// router_shard<i>_* counters, and healthy-worker gauges on /metrics; the
// protocol-level "stats" request renders the same numbers per shard.
// SIGINT/SIGTERM drains the front server gracefully, then closes the
// fleet connections (and, in -spawn mode, the workers).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/spanner"
)

func main() {
	cfg := cliutil.RegisterGraphFlags(flag.CommandLine, "regular", 512, 96, 1)
	algo := flag.String("algo", "expander", "spanner: expander|regular|baswana-sen|greedy|sparsify-uniform|bounded-degree")
	k := flag.Int("k", 2, "Baswana-Sen parameter (stretch 2k-1)")
	alpha := flag.Int("alpha", 3, "greedy spanner stretch")
	backend := flag.String("oracle-backend", "auto",
		"worker distance-resolution backend: landmark-bibfs|exact-cached|sparse-hub|auto (-spawn mode; auto tunes once on worker 0, replicas reuse the pick)")
	landmarks := flag.Int("landmarks", 16, "landmark BFS trees per worker oracle (-spawn mode)")
	cacheSize := flag.Int("cache", 1<<16, "per-worker LRU result-cache entries (negative disables; -spawn mode)")
	workers := flag.Int("workers", 0, "per-worker batch pool size (0 = GOMAXPROCS; -spawn mode)")

	spawn := flag.Int("spawn", 0, "boot this many in-process worker replicas on loopback")
	connect := flag.String("connect", "", "comma-separated worker addresses (instead of -spawn)")
	listen := flag.String("listen", ":7070", "front-door listen address (both protocols)")
	connsPer := flag.Int("conns-per-worker", router.DefaultConnsPerWorker, "pooled connections per worker")
	retries := flag.Int("retries", router.DefaultRetries, "extra workers a failed chunk is tried on")
	health := flag.Duration("health", router.DefaultHealthInterval, "worker health-check interval (negative disables)")
	reqTimeout := flag.Duration("request-timeout", router.DefaultRequestTimeout, "per-request deadline towards a worker")

	maxConns := flag.Int("maxconns", server.DefaultMaxConns, "front-door concurrent connection limit")
	maxLine := flag.Int("maxline", server.DefaultMaxLineBytes, "request line length limit in bytes")
	maxBatch := flag.Int("maxbatch", server.DefaultMaxBatch, "largest accepted batch at the front door")
	idle := flag.Duration("idle", server.DefaultIdleTimeout, "per-connection idle read deadline (negative disables)")
	drain := flag.Duration("drain", server.DefaultDrainTimeout, "graceful-shutdown budget")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /debug/pprof, /debug/requests on this HTTP address")
	traceSample := flag.Int("trace-sample", 0, "trace every Nth binary request at the front door (0 = only client-requested traces)")
	logLevel := flag.String("log-level", "info", "structured log threshold: debug|info|warn|error")
	flag.Parse()

	if (*spawn > 0) == (*connect != "") {
		fmt.Fprintln(os.Stderr, "dcrouter: exactly one of -spawn or -connect is required")
		os.Exit(2)
	}

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	logger := obs.NewLogger(os.Stderr, level)
	logger.Info("dcrouter starting", "pid", os.Getpid())

	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg)
	flight := obs.NewFlightRecorder(0, 0, 0)
	flight.AttachMetrics(reg)
	if *debugAddr != "" {
		ds, err := obs.ServeDebug(*debugAddr, reg, flight)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer ds.Close()
		fmt.Printf("debug listening on %s\n", ds.Addr())
	}

	var addrs []string
	if *spawn > 0 {
		// Build the graph and spanner once; every worker gets its own
		// oracle replica over the shared (read-only) spanner. Worker
		// oracles use private registries — metric names collide otherwise
		// — and the fleet's externally visible numbers come from the
		// router_* counters instead.
		g := cfg.MustBuild()
		fmt.Printf("G: n=%d m=%d maxDeg=%d connected=%v\n", g.N(), g.M(), g.MaxDegree(), g.Connected())
		dc, err := core.Build(g, core.Options{
			Algorithm: core.Algorithm(*algo),
			Seed:      cfg.Seed,
			K:         *k,
			Alpha:     *alpha,
			Expander:  spanner.ExpanderOptions{EnsureConnected: true},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("H (%s): m=%d, certified alpha=%d\n", *algo, dc.Graph().M(), dc.CertifiedAlpha())
		t0 := time.Now()
		// StartLocalFleet builds worker oracles sequentially, so worker 0
		// can resolve "auto" once (running the tuner) and every replica
		// after it reuses the concrete pick instead of re-benchmarking.
		chosen := *backend
		fleet, err := router.StartLocalFleet(*spawn, func(i int) (*oracle.Oracle, error) {
			o, err := oracle.New(dc, oracle.Options{
				Backend:   chosen,
				Landmarks: *landmarks,
				CacheSize: *cacheSize,
				Workers:   *workers,
			})
			if err == nil && i == 0 {
				if rep := o.TunerReport(); rep != nil {
					fmt.Printf("oracle tuner (worker 0):\n%s", rep)
				}
				chosen = o.Backend()
				fmt.Printf("worker oracle backend: %s\n", chosen)
			}
			return o, err
		}, server.Config{
			MaxBatch: *maxBatch,
			Log:      logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer fleet.Close()
		addrs = fleet.Addrs()
		fmt.Printf("spawned %d workers in %v: %s\n", *spawn, time.Since(t0).Round(time.Millisecond), strings.Join(addrs, " "))
	} else {
		for _, a := range strings.Split(*connect, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
	}

	rt, err := router.New(router.Options{
		Workers:        addrs,
		ConnsPerWorker: *connsPer,
		Retries:        *retries,
		HealthInterval: *health,
		RequestTimeout: *reqTimeout,
		Registry:       reg,
		Log:            logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer rt.Close()
	fmt.Printf("fleet: %d workers, n=%d, worker maxbatch=%d\n", len(addrs), rt.N(), rt.MaxBatch())

	front := server.NewBackend(rt, server.Config{
		MaxConns:     *maxConns,
		MaxLineBytes: *maxLine,
		MaxBatch:     *maxBatch,
		IdleTimeout:  *idle,
		DrainTimeout: *drain,
		Log:          logger,
		Registry:     reg,
		Flight:       flight,
		TraceSample:  *traceSample,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("router serving on %s (workers=%d maxbatch=%d)\n", l.Addr(), len(addrs), *maxBatch)
	if err := front.Serve(ctx, l); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("drained, exiting")
}
