// Command dcbench runs the registered benchmark scenarios (internal/bench)
// and writes one schema-versioned BENCH_<name>.json per scenario.
//
// Usage:
//
//	dcbench [-quick] [-seed N] [-workers N] [-iters N] [-warmup N]
//	        [-run a,b,...] [-out DIR] [-compare DIR] [-tolerance F] [-list]
//
// Results for a fixed seed are deterministic across worker counts (the
// harness verifies this per run and records it in the JSON); timings, of
// course, are not. See DESIGN.md §9 for the schema and methodology.
//
// -compare DIR turns the run into a regression gate: each scenario's
// fresh measurement is checked against DIR/BENCH_<name>.json and the
// process exits non-zero when one is more than -tolerance (default 25%)
// slower than its committed baseline, or when the determinism fingerprint
// changed at an identical configuration. Scenarios without a baseline
// file are noted and skipped.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/cliutil"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "smoke-sized inputs (CI / verify.sh)")
		workers = flag.Int("workers", 0, "measured worker-pool size (0 = all cores)")
		iters   = flag.Int("iters", 0, "timed iterations per scenario (0 = default 3)")
		warmup  = flag.Int("warmup", 0, "untimed warmup iterations (0 = default 1)")
		run     = flag.String("run", "", "comma-separated scenario names (default: all)")
		out     = flag.String("out", ".", "directory for BENCH_<name>.json files")
		compare = flag.String("compare", "", "baseline directory of BENCH_<name>.json files to regression-gate against")
		tol     = flag.Float64("tolerance", bench.DefaultTolerance, "allowed ns/op slowdown vs baseline before -compare fails")
		list    = flag.Bool("list", false, "list scenarios and exit")
	)
	seed := cliutil.RegisterSeedFlag(flag.CommandLine, bench.DefaultSeed)
	flag.Parse()

	if *list {
		for _, sc := range bench.Scenarios() {
			fmt.Printf("%-20s %s\n", sc.Name, sc.Description)
		}
		return
	}

	selected := bench.Scenarios()
	if *run != "" {
		selected = selected[:0]
		for _, name := range strings.Split(*run, ",") {
			sc, ok := bench.Lookup(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "dcbench: unknown scenario %q (try -list)\n", name)
				os.Exit(1)
			}
			selected = append(selected, sc)
		}
	}

	opt := bench.Options{
		Seed:       *seed,
		Quick:      *quick,
		Workers:    *workers,
		Warmup:     *warmup,
		Iterations: *iters,
	}

	fmt.Printf("%-20s %14s %14s %8s %6s  %s\n",
		"scenario", "ns/op", "serial ns/op", "speedup", "det", "file")
	failed := false
	for _, sc := range selected {
		m, err := bench.Run(sc, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcbench: %v\n", err)
			failed = true
			continue
		}
		path, err := m.WriteFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcbench: write %s: %v\n", sc.Name, err)
			failed = true
			continue
		}
		fmt.Printf("%-20s %14d %14d %7.2fx %6v  %s\n",
			m.Name, m.NsPerOp, m.SerialNsPerOp, m.SpeedupVsSerial, m.Deterministic, path)
		if !m.Deterministic {
			fmt.Fprintf(os.Stderr, "dcbench: %s: serial and parallel fingerprints diverged\n", m.Name)
			failed = true
		}
		if *compare != "" {
			compared, err := bench.CompareDir(m, *compare, *tol)
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "dcbench: %v\n", err)
				failed = true
			case !compared:
				fmt.Fprintf(os.Stderr, "dcbench: %s: no baseline in %s, skipping comparison\n", m.Name, *compare)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
