// Command scaling emits the scaling series of the reproduced results as
// CSV files (or stdout), so the asymptotic shapes — the paper's Table 1
// exponents — can be plotted or regression-checked externally.
//
// Usage:
//
//	scaling                 # all series to stdout
//	scaling -out ./data     # writes theorem{2,3,4}-scaling.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cliutil"
	"repro/internal/experiments"
)

func main() {
	out := flag.String("out", "", "directory for CSV files (default: stdout)")
	seed := cliutil.RegisterSeedFlag(flag.CommandLine, 42)
	quick := flag.Bool("quick", false, "reduced sweep")
	prof := cliutil.RegisterProfileFlags(flag.CommandLine)
	flag.Parse()
	defer prof.MustStart()()

	series, err := experiments.AllSeries(experiments.Config{Seed: *seed, Quick: *quick})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, s := range series {
		if *out == "" {
			fmt.Printf("# %s\n", s.Name)
			w := csv.NewWriter(os.Stdout)
			writeSeries(w, s)
			fmt.Println()
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(*out, s.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := csv.NewWriter(f)
		writeSeries(w, s)
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, len(s.Rows))
	}
}

func writeSeries(w *csv.Writer, s *experiments.Series) {
	_ = w.Write(s.Header)
	for _, row := range s.Rows {
		_ = w.Write(row)
	}
	w.Flush()
}
