// Command experiments regenerates the paper's evaluation: every Table 1
// row and every figure-derived experiment (see DESIGN.md §3). Output is a
// sequence of paper-vs-measured tables.
//
// Usage:
//
//	experiments [-run id[,id...]] [-seed N] [-quick] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all)")
	seed := flag.Uint64("seed", 42, "random seed for all experiments")
	quick := flag.Bool("quick", false, "reduced instance sizes")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	var results []*experiments.Result
	if *runIDs == "" {
		results = experiments.RunAll(cfg)
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			run, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			res, err := run(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
				os.Exit(1)
			}
			results = append(results, res)
		}
	}
	for i, r := range results {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(r.String())
	}
}
