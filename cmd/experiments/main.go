// Command experiments regenerates the paper's evaluation: every Table 1
// row and every figure-derived experiment (see DESIGN.md §3). Output is a
// sequence of paper-vs-measured tables.
//
// Usage:
//
//	experiments [-run id[,id...]] [-seed N] [-quick] [-list] [-trace] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all)")
	seed := flag.Uint64("seed", 42, "random seed for all experiments")
	quick := flag.Bool("quick", false, "reduced instance sizes")
	list := flag.Bool("list", false, "list experiment ids and exit")
	trace := flag.Bool("trace", false, "print a per-experiment phase tree to stderr after the results")
	workers := flag.Int("workers", 0, "worker pool for the measurement kernels (0 = all cores); output is identical for any value")
	prof := cliutil.RegisterProfileFlags(flag.CommandLine)
	flag.Parse()
	defer prof.MustStart()()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var root *obs.Span
	if *trace {
		root = obs.StartSpan("experiments")
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick, Trace: root, Workers: *workers}
	var results []*experiments.Result
	if *runIDs == "" {
		results = experiments.RunAll(cfg)
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			run, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			ecfg := cfg
			esp := root.Start(id)
			ecfg.Trace = esp
			res, err := run(ecfg)
			esp.End()
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
				os.Exit(1)
			}
			results = append(results, res)
		}
	}
	root.End()
	for i, r := range results {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(r.String())
	}
	if root != nil {
		fmt.Fprint(os.Stderr, root.Tree())
	}
}
