// Command localsim runs the distributed Algorithm 1 (Corollary 3) in the
// LOCAL-model simulator and compares its output with the sequential
// reference execution.
//
// Usage:
//
//	localsim -n 216 -d 40 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/local"
	"repro/internal/rng"
	"repro/internal/spanner"
)

func main() {
	n := flag.Int("n", 216, "vertex count")
	d := flag.Int("d", 40, "degree (must keep n·d even)")
	seed := flag.Uint64("seed", 7, "random seed")
	flag.Parse()

	g, err := gen.RandomRegular(*n, *d, rng.New(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := spanner.DefaultRegularOptions(*seed)

	dist := local.DistributedRegularSpanner(g, opts)
	seq := local.SequentialReference(g, opts)

	fmt.Printf("graph: n=%d Δ=%d m=%d\n", g.N(), *d, g.M())
	fmt.Printf("protocol: rounds=%d messages=%d (Corollary 3 promises O(1) rounds)\n",
		dist.Rounds, dist.Messages)
	fmt.Printf("sampled G': %d edges (ρ=%.3f, Δ'=%d)\n", dist.GPrime.M(), dist.Rho, dist.DeltaPrime)
	fmt.Printf("spanner H: %d edges (%.1f%% of G)\n", dist.H.M(), 100*float64(dist.H.M())/float64(g.M()))

	same := dist.H.M() == seq.H.M() && dist.H.IsSubgraphOf(seq.H)
	fmt.Printf("distributed == sequential reference: %v\n", same)

	rep := spanner.VerifyEdgeStretch(g, dist.H, 3)
	fmt.Printf("distance stretch ≤ 3: violations=%d maxStretch=%v\n", rep.Violations, rep.MaxStretch)
	if !same || rep.Violations > 0 {
		os.Exit(1)
	}
}
