// Command localsim runs the distributed Algorithm 1 (Corollary 3) in the
// LOCAL-model simulator and compares its output with the sequential
// reference execution.
//
// Usage:
//
//	localsim -n 216 -d 40 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/local"
	"repro/internal/spanner"
)

func main() {
	cfg := cliutil.RegisterGraphFlags(flag.CommandLine, "regular", 216, 40, 7)
	prof := cliutil.RegisterProfileFlags(flag.CommandLine)
	flag.Parse()
	defer prof.MustStart()()

	g := cfg.MustBuild()
	d := &cfg.D
	opts := spanner.DefaultRegularOptions(cfg.Seed)

	dist := local.DistributedRegularSpanner(g, opts)
	seq := local.SequentialReference(g, opts)

	fmt.Printf("graph: n=%d Δ=%d m=%d\n", g.N(), *d, g.M())
	fmt.Printf("protocol: rounds=%d messages=%d (Corollary 3 promises O(1) rounds)\n",
		dist.Rounds, dist.Messages)
	fmt.Printf("sampled G': %d edges (ρ=%.3f, Δ'=%d)\n", dist.GPrime.M(), dist.Rho, dist.DeltaPrime)
	fmt.Printf("spanner H: %d edges (%.1f%% of G)\n", dist.H.M(), 100*float64(dist.H.M())/float64(g.M()))

	same := dist.H.M() == seq.H.M() && dist.H.IsSubgraphOf(seq.H)
	fmt.Printf("distributed == sequential reference: %v\n", same)

	rep := spanner.VerifyEdgeStretch(g, dist.H, 3)
	fmt.Printf("distance stretch ≤ 3: violations=%d maxStretch=%v\n", rep.Violations, rep.MaxStretch)
	if !same || rep.Violations > 0 {
		os.Exit(1)
	}
}
