// Command dcserve builds a DC-spanner of a generated or loaded graph and
// serves point-to-point distance/route queries against it through the
// internal/oracle engine — the repository's "many queries against one
// precomputed spanner" serving path. The connection lifecycle and the
// line protocol live in internal/server; this command is flag parsing and
// wiring.
//
// Usage:
//
//	dcserve -demo                      # 512-node Δ=96 expander, 10k mixed queries, latency report
//	dcserve -listen :7070              # TCP line protocol; SIGINT/SIGTERM drains gracefully
//	dcserve < queries.txt              # same protocol on stdin/stdout
//	dcserve -listen :7070 -debug-addr 127.0.0.1:6060
//	                                   # adds an HTTP sidecar: /metrics (Prometheus
//	                                   # text), /healthz, /debug/pprof/*
//
// Protocol (one request per line; see internal/server for the full spec):
//
//	dist <u> <v>   ->  dist <u> <v> = <d> exact=<t|f> bound=<b> us=<latency>
//	route <u> <v>  ->  route <u> <v> = <d> path=<v0>-<v1>-...-<vk>
//	batch <n>      ->  n dist lines in, n index-aligned answers out
//	stats          ->  stats <oracle report> | server <counter report>
//	quit           ->  closes the connection (stdin mode: exits)
//
// With -dynamic the server maintains an incremental cluster spanner over
// a live graph and additionally answers (see internal/server):
//
//	update <u> <v> <add|del>  ->  update ... = applied=<t|f> rebuilt=<t|f> m=<m> hm=<hm> seq=<s>
//	snapshot [verify]         ->  snapshot n=... m=... hm=... seq=... ghash=... hhash=... verified=<t|f> consistent=<t|f>
//
// Errors answer "err <message>" and keep the connection open.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/spanner"
)

func main() {
	cfg := cliutil.RegisterGraphFlags(flag.CommandLine, "regular", 512, 96, 1)
	algo := flag.String("algo", "expander", "spanner: expander|regular|baswana-sen|greedy|sparsify-uniform|bounded-degree")
	dynamic := flag.Bool("dynamic", false,
		"serve a live graph: maintain an incremental cluster spanner and accept update/snapshot verbs (ignores -algo)")
	rebuildThr := flag.Float64("rebuild-threshold", 0,
		"dynamic mode: dirty fraction triggering a full spanner recompute (0 = default, negative disables)")
	k := flag.Int("k", 2, "Baswana-Sen parameter (stretch 2k-1)")
	alpha := flag.Int("alpha", 3, "greedy spanner stretch")
	backend := flag.String("oracle-backend", "auto",
		"distance-resolution backend: landmark-bibfs|exact-cached|sparse-hub|auto (benchmark at startup and pick)")
	landmarks := flag.Int("landmarks", 16, "landmark BFS trees precomputed on the spanner (landmark-bibfs backend)")
	sparseHubs := flag.Int("sparse-hubs", 0, "hub count for the sparse-hub backend (0 = ceil(sqrt(n)))")
	memBudget := flag.Int64("oracle-mem", 0, "auto-tuner memory budget in bytes (0 = 128 MiB, negative = unlimited)")
	cacheSize := flag.Int("cache", 1<<16, "LRU result-cache entries (negative disables)")
	workers := flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
	maxDist := flag.Int("maxdist", 0, "exact-search depth bound; deeper answers fall back to the landmark bound (0 = unbounded)")
	sample := flag.Int("sample", 64, "verify every k-th query against exact BFS on G for realized stretch (negative disables)")
	listen := flag.String("listen", "", "serve the line protocol on this TCP address instead of stdin")
	demo := flag.Bool("demo", false, "answer -queries mixed random queries, print the latency report, and exit")
	queries := flag.Int("queries", 10000, "demo query count")
	maxConns := flag.Int("maxconns", server.DefaultMaxConns, "concurrent connection limit (excess answered 'err server busy')")
	maxLine := flag.Int("maxline", server.DefaultMaxLineBytes, "request line length limit in bytes")
	maxBatch := flag.Int("maxbatch", server.DefaultMaxBatch, "largest accepted 'batch <n>'")
	idle := flag.Duration("idle", server.DefaultIdleTimeout, "per-connection idle read deadline (negative disables)")
	writeTO := flag.Duration("writetimeout", server.DefaultWriteTimeout, "per-response write deadline (negative disables)")
	drain := flag.Duration("drain", server.DefaultDrainTimeout, "graceful-shutdown budget before force-closing connections")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /debug/pprof, and /debug/requests on this HTTP address (e.g. 127.0.0.1:0)")
	traceSample := flag.Int("trace-sample", 0, "server-side trace every Nth binary request (0 = only client-requested traces)")
	logLevel := flag.String("log-level", "info", "structured log threshold: debug|info|warn|error")
	prof := cliutil.RegisterProfileFlags(flag.CommandLine)
	flag.Parse()
	defer prof.MustStart()()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	logger := obs.NewLogger(os.Stderr, level)
	logger.Info("dcserve starting", "pid", os.Getpid())

	// One process-wide registry: the oracle, the server, and the Go
	// runtime all register here, so the wire "stats" line, the -demo
	// report, and /metrics render from the same counters. The flight
	// recorder rides along: sampled request traces land there and are
	// served at /debug/requests.
	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg)
	flight := obs.NewFlightRecorder(0, 0, 0)
	flight.AttachMetrics(reg)
	if *debugAddr != "" {
		ds, err := obs.ServeDebug(*debugAddr, reg, flight)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer ds.Close()
		fmt.Printf("debug listening on %s\n", ds.Addr())
	}

	g := cfg.MustBuild()
	fmt.Printf("G: n=%d m=%d maxDeg=%d connected=%v\n", g.N(), g.M(), g.MaxDegree(), g.Connected())

	oracleOpts := oracle.Options{
		Backend:      *backend,
		Landmarks:    *landmarks,
		SparseHubs:   *sparseHubs,
		MemoryBudget: *memBudget,
		CacheSize:    *cacheSize,
		Workers:      *workers,
		MaxDist:      *maxDist,
		SampleEvery:  *sample,
		Registry:     reg,
	}

	// mount wraps whichever engine serves this process: a static Oracle,
	// or the dynamic live-graph engine that additionally answers the
	// update/snapshot verbs.
	var (
		o     *oracle.Oracle
		mount func(server.Config) *server.Server
	)
	t0 := time.Now()
	if *dynamic {
		d, err := oracle.NewDynamic(g, oracle.DynamicOptions{
			Spanner: spanner.IncrementalOptions{Seed: cfg.Seed, RebuildThreshold: *rebuildThr},
			Oracle:  oracleOpts,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		o = d.Oracle()
		hm := d.Snapshot(false).HM
		fmt.Printf("H (incremental-cluster3, dynamic): m=%d (%.1f%% of G), certified alpha=%d\n",
			hm, 100*float64(hm)/float64(g.M()), spanner.IncrementalAlpha)
		mount = func(c server.Config) *server.Server { return server.NewBackend(server.DynamicBackend{Dynamic: d}, c) }
	} else {
		dc, err := core.Build(g, core.Options{
			Algorithm: core.Algorithm(*algo),
			Seed:      cfg.Seed,
			K:         *k,
			Alpha:     *alpha,
			Expander:  spanner.ExpanderOptions{EnsureConnected: true},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		h := dc.Graph()
		fmt.Printf("H (%s): m=%d (%.1f%% of G), certified alpha=%d\n",
			*algo, h.M(), 100*float64(h.M())/float64(g.M()), dc.CertifiedAlpha())
		o, err = oracle.New(dc, oracleOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		mount = func(c server.Config) *server.Server { return server.New(o, c) }
	}
	if rep := o.TunerReport(); rep != nil {
		fmt.Printf("oracle tuner:\n%s", rep)
	}
	bs := o.BackendStats()
	fmt.Printf("oracle: backend=%s (stretch-bound=%d, %.1f KiB, %d landmarks) ready in %v\n",
		bs.Name, bs.StretchBound, float64(bs.MemoryBytes)/1024, len(o.Landmarks()),
		time.Since(t0).Round(time.Microsecond))

	o.MarkServingStart()
	srvCfg := server.Config{
		MaxConns:     *maxConns,
		MaxLineBytes: *maxLine,
		MaxBatch:     *maxBatch,
		IdleTimeout:  *idle,
		WriteTimeout: *writeTO,
		DrainTimeout: *drain,
		Log:          logger,
		Registry:     reg,
		Flight:       flight,
		TraceSample:  *traceSample,
	}
	switch {
	case *demo:
		runDemo(o, g.N(), *queries, cfg.Seed)
	case *listen != "":
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("serving on %s (maxconns=%d maxline=%d idle=%v dynamic=%v)\n", l.Addr(), *maxConns, *maxLine, *idle, *dynamic)
		if err := mount(srvCfg).Serve(ctx, l); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("drained, exiting")
	default:
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		mount(srvCfg).ServeStream(ctx, os.Stdin, os.Stdout)
	}
}

// runDemo answers a mixed random workload — 90% dist (batched), 10%
// route — drawn from a pair pool a quarter the workload size, so the
// cache sees realistic re-hits, then prints the serving report.
func runDemo(o *oracle.Oracle, n, total int, seed uint64) {
	if total < 1 {
		total = 1
	}
	r := rng.New(seed ^ 0xdeadbeefcafef00d)
	poolSize := total / 4
	if poolSize < 1 {
		poolSize = 1
	}
	pool := make([]oracle.Query, poolSize)
	for i := range pool {
		pool[i] = oracle.Query{U: int32(r.Intn(n)), V: int32(r.Intn(n))}
	}
	nRoutes := total / 10
	nDist := total - nRoutes
	qs := make([]oracle.Query, nDist)
	for i := range qs {
		qs[i] = pool[r.Intn(poolSize)]
	}

	start := time.Now()
	_ = o.AnswerBatch(qs)
	for i := 0; i < nRoutes; i++ {
		q := pool[r.Intn(poolSize)]
		if _, _, err := o.Route(q.U, q.V); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start)

	s := o.Stats()
	fmt.Printf("demo: %d queries (%d dist batched, %d route) in %v\n",
		total, nDist, nRoutes, elapsed.Round(time.Millisecond))
	fmt.Printf("latency: p50=%s p95=%s p99=%s mean=%s   route p50=%s p99=%s\n",
		usec(s.LatencyP50), usec(s.LatencyP95), usec(s.LatencyP99), usec(s.LatencyMean),
		usec(s.RouteLatencyP50), usec(s.RouteLatencyP99))
	fmt.Printf("throughput: %.0f qps   cache: hits=%d misses=%d hitRate=%.3f\n",
		float64(total)/elapsed.Seconds(), s.CacheHits, s.CacheMisses, s.HitRate)
	fmt.Printf("stretch: realized alpha=%.3f mean=%.3f over %d samples (certified %d)   maxRouteCong=%d\n",
		s.RealizedAlpha, s.MeanStretch, s.StretchSamples, s.CertifiedAlpha, s.MaxCongestion)
	if s.StretchSamples < 100 {
		fmt.Fprintf(os.Stderr, "warning: only %d realized-stretch samples (<100); lower -sample or raise -queries for a statistically meaningful check\n",
			s.StretchSamples)
	}
	if s.CertifiedAlpha > 0 && s.RealizedAlpha > float64(s.CertifiedAlpha) {
		fmt.Fprintln(os.Stderr, "realized stretch exceeds certified alpha")
		os.Exit(1)
	}
}

func usec(sec float64) string { return fmt.Sprintf("%.1fµs", sec*1e6) }
