// Command dcserve builds a DC-spanner of a generated or loaded graph and
// serves point-to-point distance/route queries against it through the
// internal/oracle engine — the repository's "many queries against one
// precomputed spanner" serving path.
//
// Usage:
//
//	dcserve -demo                      # 512-node Δ=96 expander, 10k mixed queries, latency report
//	dcserve -listen :7070              # TCP line protocol, one goroutine per connection
//	dcserve < queries.txt              # same protocol on stdin/stdout
//
// Protocol (one request per line, one response line per request):
//
//	dist <u> <v>   ->  dist <u> <v> = <d> exact=<t|f> bound=<b> us=<latency>
//	route <u> <v>  ->  route <u> <v> = <d> path=<v0>-<v1>-...-<vk>
//	stats          ->  stats <key=value report>
//	quit           ->  closes the connection (stdin mode: exits)
//
// Errors answer "err <message>" and keep the connection open.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/spanner"
)

func main() {
	cfg := cliutil.RegisterGraphFlags(flag.CommandLine, "regular", 512, 96, 1)
	algo := flag.String("algo", "expander", "spanner: expander|regular|baswana-sen|greedy|sparsify-uniform|bounded-degree")
	k := flag.Int("k", 2, "Baswana-Sen parameter (stretch 2k-1)")
	alpha := flag.Int("alpha", 3, "greedy spanner stretch")
	landmarks := flag.Int("landmarks", 16, "landmark BFS trees precomputed on the spanner")
	cacheSize := flag.Int("cache", 1<<16, "LRU result-cache entries (negative disables)")
	workers := flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
	maxDist := flag.Int("maxdist", 0, "exact-search depth bound; deeper answers fall back to the landmark bound (0 = unbounded)")
	sample := flag.Int("sample", 64, "verify every k-th query against exact BFS on G for realized stretch (negative disables)")
	listen := flag.String("listen", "", "serve the line protocol on this TCP address instead of stdin")
	demo := flag.Bool("demo", false, "answer -queries mixed random queries, print the latency report, and exit")
	queries := flag.Int("queries", 10000, "demo query count")
	flag.Parse()

	g := cfg.MustBuild()
	fmt.Printf("G: n=%d m=%d maxDeg=%d connected=%v\n", g.N(), g.M(), g.MaxDegree(), g.Connected())

	dc, err := core.Build(g, core.Options{
		Algorithm: core.Algorithm(*algo),
		Seed:      cfg.Seed,
		K:         *k,
		Alpha:     *alpha,
		Expander:  spanner.ExpanderOptions{EnsureConnected: true},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h := dc.Graph()
	fmt.Printf("H (%s): m=%d (%.1f%% of G), certified alpha=%d\n",
		*algo, h.M(), 100*float64(h.M())/float64(g.M()), dc.CertifiedAlpha())

	t0 := time.Now()
	o, err := oracle.New(dc, oracle.Options{
		Landmarks:   *landmarks,
		CacheSize:   *cacheSize,
		Workers:     *workers,
		MaxDist:     *maxDist,
		SampleEvery: *sample,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("oracle: %d landmarks precomputed in %v\n", len(o.Landmarks()), time.Since(t0).Round(time.Microsecond))

	switch {
	case *demo:
		runDemo(o, g.N(), *queries, cfg.Seed)
	case *listen != "":
		serveTCP(o, *listen)
	default:
		serve(o, os.Stdin, os.Stdout)
	}
}

// runDemo answers a mixed random workload — 90% dist (batched), 10%
// route — drawn from a pair pool a quarter the workload size, so the
// cache sees realistic re-hits, then prints the serving report.
func runDemo(o *oracle.Oracle, n, total int, seed uint64) {
	if total < 1 {
		total = 1
	}
	r := rng.New(seed ^ 0xdeadbeefcafef00d)
	poolSize := total / 4
	if poolSize < 1 {
		poolSize = 1
	}
	pool := make([]oracle.Query, poolSize)
	for i := range pool {
		pool[i] = oracle.Query{U: int32(r.Intn(n)), V: int32(r.Intn(n))}
	}
	nRoutes := total / 10
	nDist := total - nRoutes
	qs := make([]oracle.Query, nDist)
	for i := range qs {
		qs[i] = pool[r.Intn(poolSize)]
	}

	start := time.Now()
	_ = o.AnswerBatch(qs)
	for i := 0; i < nRoutes; i++ {
		q := pool[r.Intn(poolSize)]
		if _, _, err := o.Route(q.U, q.V); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start)

	s := o.Stats()
	fmt.Printf("demo: %d queries (%d dist batched, %d route) in %v\n",
		total, nDist, nRoutes, elapsed.Round(time.Millisecond))
	fmt.Printf("latency: p50=%s p95=%s p99=%s mean=%s\n",
		usec(s.LatencyP50), usec(s.LatencyP95), usec(s.LatencyP99), usec(s.LatencyMean))
	fmt.Printf("throughput: %.0f qps   cache: hits=%d misses=%d hitRate=%.3f\n",
		float64(total)/elapsed.Seconds(), s.CacheHits, s.CacheMisses, s.HitRate)
	fmt.Printf("stretch: realized alpha=%.3f mean=%.3f over %d samples (certified %d)   maxRouteCong=%d\n",
		s.RealizedAlpha, s.MeanStretch, s.StretchSamples, s.CertifiedAlpha, s.MaxCongestion)
	if s.CertifiedAlpha > 0 && s.RealizedAlpha > float64(s.CertifiedAlpha) {
		fmt.Fprintln(os.Stderr, "realized stretch exceeds certified alpha")
		os.Exit(1)
	}
}

func usec(sec float64) string { return fmt.Sprintf("%.1fµs", sec*1e6) }

func serveTCP(o *oracle.Oracle, addr string) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("serving on %s\n", l.Addr())
	for {
		conn, err := l.Accept()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		go func() {
			defer conn.Close()
			serve(o, conn, conn)
		}()
	}
}

// serve runs the line protocol until EOF or "quit". Safe to run on many
// connections at once: the oracle is fully concurrent.
func serve(o *oracle.Oracle, in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	w := bufio.NewWriter(out)
	defer w.Flush()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" {
			return
		}
		fmt.Fprintln(w, handle(o, line))
		w.Flush()
	}
}

func handle(o *oracle.Oracle, line string) string {
	fields := strings.Fields(line)
	switch fields[0] {
	case "stats":
		return "stats " + o.Stats().String()
	case "dist":
		u, v, err := parsePair(fields)
		if err != nil {
			return "err " + err.Error()
		}
		t0 := time.Now()
		ans, err := o.Dist(u, v)
		if err != nil {
			return "err " + err.Error()
		}
		return fmt.Sprintf("dist %d %d = %d exact=%t bound=%d us=%.1f",
			u, v, ans.Dist, ans.Exact, ans.Bound, time.Since(t0).Seconds()*1e6)
	case "route":
		u, v, err := parsePair(fields)
		if err != nil {
			return "err " + err.Error()
		}
		p, ans, err := o.Route(u, v)
		if err != nil {
			return "err " + err.Error()
		}
		if p == nil {
			return fmt.Sprintf("route %d %d = unreachable", u, v)
		}
		parts := make([]string, len(p))
		for i, x := range p {
			parts[i] = strconv.Itoa(int(x))
		}
		return fmt.Sprintf("route %d %d = %d path=%s", u, v, ans.Dist, strings.Join(parts, "-"))
	default:
		return fmt.Sprintf("err unknown command %q (want dist|route|stats|quit)", fields[0])
	}
}

func parsePair(fields []string) (int32, int32, error) {
	if len(fields) != 3 {
		return 0, 0, fmt.Errorf("want %q", fields[0]+" <u> <v>")
	}
	u, err1 := strconv.Atoi(fields[1])
	v, err2 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad vertex in %v", fields[1:])
	}
	return int32(u), int32(v), nil
}
