// Command dccheck runs the differential correctness harness
// (internal/check): every optimized serving and evaluation path is checked
// against its deliberately naive reference on graphs from every
// internal/gen family. Exit status 0 means zero divergences.
//
// Usage:
//
//	dccheck [-quick] [-seed N] [-families a,b,...] [-list] [-v]
//
// Runs are deterministic in -seed: a reported divergence prints the
// family and seed that reproduce it, and
//
//	dccheck -families <family> -seed <seed>
//
// replays exactly the failing inputs. See DESIGN.md §10.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/check"
	"repro/internal/cliutil"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "smoke-sized graphs and traces (CI / verify.sh)")
		families = flag.String("families", "", "comma-separated family names (default: all)")
		list     = flag.Bool("list", false, "list generator families and exit")
		backend  = flag.String("backend", "", "restrict the oracle-backend sweep to one backend (landmark-bibfs|exact-cached|sparse-hub) and force it through the router differential; empty sweeps all")
		verbose  = flag.Bool("v", false, "per-family progress lines")
	)
	seed := cliutil.RegisterSeedFlag(flag.CommandLine, check.DefaultSeed)
	flag.Parse()

	if *list {
		for _, name := range check.FamilyNames() {
			fmt.Println(name)
		}
		return
	}

	opts := check.Options{Seed: *seed, Quick: *quick, Backend: *backend}
	if *families != "" {
		for _, name := range strings.Split(*families, ",") {
			opts.Families = append(opts.Families, strings.TrimSpace(name))
		}
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dccheck: "+format+"\n", args...)
		}
	}

	t0 := time.Now()
	rep, err := check.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dccheck: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("dccheck: %s in %.1fs (seed %d)\n", rep, time.Since(t0).Seconds(), *seed)
	if !rep.OK() {
		for _, d := range rep.Divergences {
			fmt.Printf("DIVERGENCE %s\n", d)
			fmt.Printf("  reproduce: dccheck -families %s -seed %d\n", d.Family, d.Seed)
		}
		os.Exit(1)
	}
}
