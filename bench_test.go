package dcspanner

// One benchmark per reproduced table row / figure of the paper (see
// DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured numbers). Each benchmark runs the experiment kernel
// and reports its headline measurement via b.ReportMetric, so
// `go test -bench . -benchmem` regenerates the evaluation.

import (
	"math"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/local"
	"repro/internal/lowerbound"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spanner"
)

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	run, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := experiments.Config{Seed: 42, Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if strings.Contains(res.Body, "viol=") && !strings.Contains(res.Body, "viol=0") {
			b.Fatalf("%s: stretch violation:\n%s", id, res.Body)
		}
	}
}

// BenchmarkTable1Theorem2 regenerates the Table 1 "Theorem 2" row:
// expander DC-spanner with stretch 3 and O(n^{5/3}) edges.
func BenchmarkTable1Theorem2(b *testing.B) {
	n, d := 216, 60
	g := gen.MustRandomRegular(n, d, rng.New(1))
	eps := spanner.EpsilonForDegree(n, d)
	var edges int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := spanner.BuildExpander(g, spanner.ExpanderOptions{
			Epsilon: eps, Seed: uint64(i) + 1, EnsureConnected: true})
		if err != nil {
			b.Fatal(err)
		}
		edges = sp.H.M()
	}
	b.ReportMetric(float64(edges)/math.Pow(float64(n), 5.0/3.0), "edges/n^1.67")
}

// BenchmarkTable1Theorem3 regenerates the Table 1 "Theorem 3" row:
// Algorithm 1 on a Δ-regular graph, Δ ≥ n^{2/3}.
func BenchmarkTable1Theorem3(b *testing.B) {
	n, d := 216, 40
	g := gen.MustRandomRegular(n, d, rng.New(2))
	var edges int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := spanner.BuildRegular(g, spanner.DefaultRegularOptions(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		edges = res.Spanner.H.M()
	}
	b.ReportMetric(float64(edges)/float64(g.M()), "edgeRatio")
}

// BenchmarkTable1KoutisXu regenerates the "[16]" row: uniform spectral
// sparsification to O(n log n) edges.
func BenchmarkTable1KoutisXu(b *testing.B) {
	n, d := 512, 64
	g := gen.MustRandomRegular(n, d, rng.New(3))
	var edges int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := spanner.SparsifyUniform(g, 3.0, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		edges = sp.H.M()
	}
	b.ReportMetric(float64(edges)/(float64(n)*math.Log2(float64(n))), "edges/nlogn")
}

// BenchmarkTable1BoundedDegree regenerates the "[5]" row: bounded-degree
// expander extraction from a dense expander.
func BenchmarkTable1BoundedDegree(b *testing.B) {
	g, err := gen.DenseExpander(128, 0.5, rng.New(4))
	if err != nil {
		b.Fatal(err)
	}
	var edges int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := spanner.ExtractBoundedDegree(g, 5, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		edges = sp.H.M()
	}
	b.ReportMetric(float64(edges)/float64(g.N()), "edges/n")
}

// BenchmarkTable1Theorem4 regenerates the lower-bound row: the composite
// fan graph's optimal 3-spanner and its forced congestion stretch.
func BenchmarkTable1Theorem4(b *testing.B) {
	inst, err := gen.Theorem4Affine(7)
	if err != nil {
		b.Fatal(err)
	}
	var stretch float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an, err := lowerbound.AnalyzeTheorem4(inst)
		if err != nil {
			b.Fatal(err)
		}
		stretch = an.MeasuredStretch
	}
	b.ReportMetric(stretch, "congStretch")
}

// BenchmarkFigure1VFT regenerates the Figure 1 counterexample.
func BenchmarkFigure1VFT(b *testing.B) {
	var cong int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an, err := lowerbound.AnalyzeVFT(216)
		if err != nil {
			b.Fatal(err)
		}
		cong = an.CongestionH
	}
	b.ReportMetric(float64(cong), "congestion")
}

// BenchmarkFigure2Matching regenerates the Lemma 4 / Figure 2 measurement.
func BenchmarkFigure2Matching(b *testing.B) {
	r := rng.New(5)
	g := gen.MustRandomRegular(128, 64, r)
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := spanner.NeighborhoodMatching(g, int32(i%128), int32((i+1)%128))
		size = len(m)
	}
	b.ReportMetric(float64(size), "matchingSize")
}

// BenchmarkFigure34Detours regenerates the supported-edge census of
// Figures 3–4.
func BenchmarkFigure34Detours(b *testing.B) {
	g := gen.MustRandomRegular(216, 60, rng.New(6))
	var count int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sup := spanner.SupportedEdges(g, 3, 15)
		count = 0
		for _, s := range sup {
			if s {
				count++
			}
		}
	}
	b.ReportMetric(float64(count)/float64(g.M()), "supportedFrac")
}

// BenchmarkLemma2 regenerates the Lemma 2 separation.
func BenchmarkLemma2(b *testing.B) {
	var sep int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := gen.Lemma2Graph(64, 3)
		an := lowerbound.AnalyzeLemma2(inst)
		sep = an.CongestionConstrained
	}
	b.ReportMetric(float64(sep), "constrainedCong")
}

// BenchmarkTheorem1Decompose regenerates the Algorithm 2 measurement.
func BenchmarkTheorem1Decompose(b *testing.B) {
	r := rng.New(7)
	n := 256
	g := gen.MustRandomRegular(n, 16, r)
	prob := routing.RandomProblem(n, 256, r)
	rt, err := routing.ShortestPaths(g, prob)
	if err != nil {
		b.Fatal(err)
	}
	var matchings int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := routing.Decompose(n, rt)
		if err != nil {
			b.Fatal(err)
		}
		matchings = dec.NumMatchings()
	}
	b.ReportMetric(float64(matchings), "matchings")
}

// BenchmarkCorollary3Local regenerates the distributed construction.
func BenchmarkCorollary3Local(b *testing.B) {
	g := gen.MustRandomRegular(120, 24, rng.New(8))
	opts := spanner.DefaultRegularOptions(9)
	var rounds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := local.DistributedRegularSpanner(g, opts)
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// benchOracle builds the standard demo spanner (512-node Δ=96 expander)
// and an oracle over it for the serving benchmarks.
func benchOracle(b *testing.B, cacheSize int) *Oracle {
	b.Helper()
	g := gen.MustRandomRegular(512, 96, rng.New(1))
	dc, err := Build(g, Options{
		Algorithm: AlgoExpander, Seed: 1,
		Expander: ExpanderOptions{EnsureConnected: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	o, err := NewOracle(dc, OracleOptions{CacheSize: cacheSize, SampleEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	return o
}

// BenchmarkOracleDist measures single-query latency: cold = every query a
// distinct pair (cache disabled), warm = queries drawn from a small pool
// with the LRU cache on.
func BenchmarkOracleDist(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		o := benchOracle(b, -1)
		r := rng.New(2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := o.Dist(int32(r.Intn(512)), int32(r.Intn(512))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		o := benchOracle(b, 1<<16)
		pool := make([]OracleQuery, 256)
		r := rng.New(3)
		for i := range pool {
			pool[i] = OracleQuery{U: int32(r.Intn(512)), V: int32(r.Intn(512))}
		}
		for _, q := range pool { // prefill the cache
			if _, err := o.Dist(q.U, q.V); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := pool[i%len(pool)]
			if _, err := o.Dist(q.U, q.V); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOracleBatch measures AnswerBatch throughput over all cores,
// cold cache vs warm cache; the metric is queries per second.
func BenchmarkOracleBatch(b *testing.B) {
	const batch = 4096
	run := func(b *testing.B, o *Oracle, qs []OracleQuery) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.AnswerBatch(qs)
		}
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}
	b.Run("cold", func(b *testing.B) {
		o := benchOracle(b, -1)
		r := rng.New(4)
		qs := make([]OracleQuery, batch)
		for i := range qs {
			qs[i] = OracleQuery{U: int32(r.Intn(512)), V: int32(r.Intn(512))}
		}
		run(b, o, qs)
	})
	b.Run("warm", func(b *testing.B) {
		o := benchOracle(b, 1<<16)
		r := rng.New(5)
		pool := make([]OracleQuery, 256)
		for i := range pool {
			pool[i] = OracleQuery{U: int32(r.Intn(512)), V: int32(r.Intn(512))}
		}
		qs := make([]OracleQuery, batch)
		for i := range qs {
			qs[i] = pool[r.Intn(len(pool))]
		}
		o.AnswerBatch(qs) // prefill
		run(b, o, qs)
	})
}

// BenchmarkExperimentSuite runs every registered experiment end to end in
// quick mode — the full evaluation as a single benchmark.
func BenchmarkExperimentSuite(b *testing.B) {
	for _, id := range experiments.IDs() {
		id := id
		b.Run(id, func(b *testing.B) { benchExperiment(b, id) })
	}
}
