// Regular sparsify: a walk-through of Algorithm 1 (Theorem 3) on a
// Δ-regular graph with Δ ≥ n^{2/3}, printing the internal accounting of
// every stage — sampling, the (a,b)-supported census, reinsertion — and
// the resulting stretches, so the algorithm's mechanics are visible.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spanner"
)

func main() {
	n, d := 512, 72 // Δ = 72 ≥ 512^{2/3} = 64
	g := gen.MustRandomRegular(n, d, rng.New(2024))
	fmt.Printf("input: %d-regular graph, n=%d, m=%d (Δ ≥ n^{2/3} = %.0f ✓)\n\n",
		d, n, g.M(), math.Pow(float64(n), 2.0/3.0))

	opts := spanner.DefaultRegularOptions(5)
	res, err := spanner.BuildRegular(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Algorithm 1 stages:")
	fmt.Printf("  1. sample each edge w.p. ρ = Δ'/Δ = %d/%d = %.3f → G' with %d edges\n",
		res.DeltaPrime, d, res.Rho, res.GPrime.M())
	fmt.Printf("  2. (a,b)-supported census with a=%d, b=%d → %d/%d edges supported\n",
		res.SupportA, res.SupportB, res.SupportedCount, g.M())
	fmt.Printf("     (paper thresholds a=λΔ' with λ=2⁷ln²n/c₁ ≈ %.0f are asymptotic; see DESIGN.md)\n",
		spanner.PaperLambda(n, 0.25))
	fmt.Printf("  3. reinsert E'' (unsupported): %d edges\n", res.ReinsertedUnsupport)
	fmt.Printf("  4. reinsert removed supported edges with no 3-detour in G': %d edges\n",
		res.ReinsertedNoDetour)
	h := res.Spanner.H
	fmt.Printf("  5. H = E' ∪ reinserted: %d edges (%.1f%% of G)\n\n",
		h.M(), 100*float64(h.M())/float64(g.M()))

	rep := spanner.VerifyEdgeStretch(g, h, 3)
	fmt.Printf("distance stretch ≤ 3: violations=%d (deterministic with EnsureDetour)\n", rep.Violations)

	// Lemma 17: matching congestion ≤ 1 + 2Δ'.
	used := make([]bool, n)
	var m []graph.Edge
	for _, e := range g.Edges() {
		if !used[e.U] && !used[e.V] {
			used[e.U] = true
			used[e.V] = true
			m = append(m, e)
		}
	}
	router := res.Spanner.Router(9)
	paths, err := router.RouteMatching(m)
	if err != nil {
		log.Fatal(err)
	}
	rt := &routing.Routing{Problem: routing.MatchingProblem(m), Paths: paths}
	fmt.Printf("matching congestion: %d  (Lemma 17 bound 1+2Δ' = %d)\n",
		rt.NodeCongestion(n), 1+2*res.DeltaPrime)

	// Theorem 3: general routing via the matching decomposition.
	prob := routing.RandomPermutationProblem(n, rng.New(10))
	onG, err := routing.ShortestPaths(g, prob)
	if err != nil {
		log.Fatal(err)
	}
	onH, dec, err := routing.SubstituteViaMatchings(n, onG, res.Spanner.Router(11))
	if err != nil {
		log.Fatal(err)
	}
	cG, cH := onG.NodeCongestion(n), onH.NodeCongestion(n)
	fmt.Printf("permutation routing: C(P)=%d → C(P')=%d (stretch %.2f; Theorem 3 shape √Δ·log n = %.1f)\n",
		cG, cH, float64(cH)/float64(cG), math.Sqrt(float64(d))*math.Log2(float64(n)))
	fmt.Printf("decomposition: %d levels, %d matchings, Σ(d_k+1)=%d ≤ 12·C·log₂n=%.0f (Lemma 21)\n",
		len(dec.Levels), dec.NumMatchings(), dec.DegreePlusOneSum(), dec.Lemma21Bound())
}
