// Quickstart: build a DC-spanner of a dense expander, route a random
// workload through it, and report the realized distance and congestion
// stretches — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	dcspanner "repro"
)

func main() {
	// A 512-node, 96-regular random graph: a spectral expander w.h.p.,
	// matching the Theorem 2 regime Δ = n^{2/3+ε} (512^{2/3} = 64 < 96).
	g := dcspanner.MustRandomRegular(512, 96, 1)
	fmt.Printf("base graph: %d nodes, %d edges\n", g.N(), g.M())

	// Build the Theorem 2 spanner: sample edges with probability n^{-ε};
	// removed edges get uniformly random 3-hop replacement paths.
	dc, err := dcspanner.Build(g, dcspanner.Options{
		Algorithm: dcspanner.AlgoExpander,
		Seed:      1,
		Expander:  dcspanner.ExpanderOptions{EnsureConnected: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	h := dc.Graph()
	fmt.Printf("spanner:    %d edges (%.1f%% of G)\n", h.M(), 100*float64(h.M())/float64(g.M()))

	// Certify the distance stretch: every edge of G has a ≤3-hop
	// substitute in H, hence H is a 3-distance spanner (Lemma 1).
	rep := dcspanner.VerifyEdgeStretch(g, h, 3)
	fmt.Printf("distance:   stretch ≤ 3 certified (violations=%d, mean=%.2f)\n",
		rep.Violations, rep.MeanStretch)

	// Route 200 random demands on G, then substitute onto H via the
	// Theorem 1 pipeline (decompose into matchings, route each matching,
	// splice back).
	prob := dcspanner.RandomProblem(g.N(), 200, 2)
	onG, onH, err := dc.RouteProblem(prob)
	if err != nil {
		log.Fatal(err)
	}
	res := dcspanner.MeasureStretch(g.N(), onG, onH)
	fmt.Printf("routing:    200 demands — distance stretch %.2f, congestion %d → %d (stretch %.2f)\n",
		res.DistanceStretch, res.CongestionG, res.CongestionH, res.CongestionStretch)
}
