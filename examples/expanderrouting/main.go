// Expander routing: the paper's motivating scenario. A dense expander
// (think: a full-mesh-ish datacenter fabric) must be sparsified to cut
// routing-table and link cost, WITHOUT ruining the congestion of the
// workloads it carries.
//
// This example compares three sparsifiers on the same graph under the
// worst-case matching workload (every edge of G that can be in a matching
// is a demand):
//
//   - the Theorem 2 DC-spanner (controls distance AND congestion),
//   - a Baswana–Sen 3-spanner (classical, distance-only),
//   - a greedy 3-spanner (distance-only).
//
// All three certify distance stretch 3; only the DC-spanner also keeps
// the congestion low — the separation the paper is about.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spanner"
	"repro/internal/stats"
)

func main() {
	n, d := 343, 80 // Δ = 80 > 343^{2/3} ≈ 49: Theorem 2 regime
	g := gen.MustRandomRegular(n, d, rng.New(1))
	fmt.Printf("fabric: %d switches, %d links (%d-regular expander)\n\n", g.N(), g.M(), d)

	// Worst-case matching workload over G's edges.
	used := make([]bool, n)
	var demands []graph.Edge
	for _, e := range g.Edges() {
		if !used[e.U] && !used[e.V] {
			used[e.U] = true
			used[e.V] = true
			demands = append(demands, e)
		}
	}
	fmt.Printf("workload: %d simultaneous point-to-point demands (a matching; congestion 1 on G)\n\n", len(demands))

	tb := stats.NewTable("spanner", "edges", "% of G", "maxStretch", "congestion", "fallbacks")
	for _, algo := range []core.Algorithm{core.AlgoExpander, core.AlgoBaswanaSen, core.AlgoGreedy} {
		dc, err := core.Build(g, core.Options{
			Algorithm: algo, Seed: 7, K: 2, Alpha: 3,
			Expander: spanner.ExpanderOptions{EnsureConnected: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		h := dc.Graph()
		rep := dc.VerifyDistance(3)
		router := dc.Spanner().Router(11)
		paths, err := router.RouteMatching(demands)
		if err != nil {
			log.Fatal(err)
		}
		rt := &routing.Routing{Problem: routing.MatchingProblem(demands), Paths: paths}
		tb.AddRow(string(algo), h.M(), fmt.Sprintf("%.1f", 100*float64(h.M())/float64(g.M())),
			rep.MaxStretch, rt.NodeCongestion(n), router.Fallbacks)
	}
	fmt.Print(tb.String())
	fmt.Println("\nAll three are 3-distance spanners; the DC-spanner keeps the matching")
	fmt.Println("congestion near 1+o(1) (Theorem 2), while distance-only spanners funnel")
	fmt.Println("demands through few surviving edges — exactly the gap Lemma 2 formalizes.")
}
