// Distributed: runs the Section 7 protocol (Corollary 3) in the LOCAL
// simulator and shows that five synchronous rounds — coin flip, three
// flooding rounds, local decision — suffice to build the Theorem 3
// spanner, with the output bit-identical to a sequential execution.
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/local"
	"repro/internal/rng"
	"repro/internal/spanner"
)

func main() {
	n, d := 216, 40
	g, err := gen.RandomRegular(n, d, rng.New(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d links (%d-regular)\n\n", g.N(), g.M(), d)

	opts := spanner.DefaultRegularOptions(77)
	dist := local.DistributedRegularSpanner(g, opts)

	fmt.Println("LOCAL protocol (Corollary 3):")
	fmt.Println("  round 1: every edge owner flips the ρ = Δ'/Δ sampling coin, informs peer")
	fmt.Println("  rounds 2-4: flood (edge, sampled) knowledge to 3 hops")
	fmt.Println("  round 5: owners decide keep/reinsert from purely local knowledge")
	fmt.Printf("\nran %d rounds, %d messages\n", dist.Rounds, dist.Messages)
	fmt.Printf("G' (sampled): %d edges, H (spanner): %d edges (%.1f%% of G)\n",
		dist.GPrime.M(), dist.H.M(), 100*float64(dist.H.M())/float64(g.M()))

	seq := local.SequentialReference(g, opts)
	same := dist.H.M() == seq.H.M() && dist.H.IsSubgraphOf(seq.H)
	fmt.Printf("matches sequential execution with same coins: %v\n", same)

	rep := spanner.VerifyEdgeStretch(g, dist.H, 3)
	fmt.Printf("distance stretch ≤ 3: violations=%d\n", rep.Violations)
}
