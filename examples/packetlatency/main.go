// Packet latency: the Section 1.1 motivation made concrete. A wireless
// mesh forwards one packet per node per step; routings with lower node
// congestion deliver with lower latency and smaller queues. We route the
// same demand set on the base graph, on the DC-spanner, and on a
// distance-only greedy spanner, then run the store-and-forward schedule
// on each and compare delivered performance.
package main

import (
	"fmt"
	"log"

	dcspanner "repro"
)

func main() {
	n, d := 343, 80
	g := dcspanner.MustRandomRegular(n, d, 1)
	fmt.Printf("mesh: %d nodes, %d links\n", g.N(), g.M())

	// Demands: a heavy permutation workload.
	prob := dcspanner.RandomPermutationProblem(n, 2)
	fmt.Printf("workload: %d packets (random permutation)\n\n", len(prob))

	show := func(name string, edges int, rt *dcspanner.Routing) {
		res, err := dcspanner.SimulatePackets(n, rt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s edges=%-6d congestion=%-3d dilation=%-2d makespan=%-3d meanLatency=%.1f maxQueue=%d\n",
			name, edges, res.Congestion, res.Dilation, res.Makespan, res.MeanLatency(), res.MaxQueue)
	}

	// Near-optimal congestion routing on the full graph.
	onG, err := dcspanner.MinCongestion(g, prob, 3)
	if err != nil {
		log.Fatal(err)
	}
	show("G (min-congestion)", g.M(), onG)

	// DC-spanner: substitute the same demands via Theorem 1.
	dc, err := dcspanner.Build(g, dcspanner.Options{
		Algorithm: dcspanner.AlgoExpander, Seed: 4,
		Expander: dcspanner.ExpanderOptions{EnsureConnected: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	onH, _, err := dc.SubstituteRouting(onG)
	if err != nil {
		log.Fatal(err)
	}
	show("DC-spanner (Thm 2)", dc.Graph().M(), onH)

	// Distance-only greedy 3-spanner for contrast.
	gr, err := dcspanner.Build(g, dcspanner.Options{Algorithm: dcspanner.AlgoGreedy, Alpha: 3})
	if err != nil {
		log.Fatal(err)
	}
	onGr, _, err := gr.SubstituteRouting(onG)
	if err != nil {
		log.Fatal(err)
	}
	show("greedy 3-spanner", gr.Graph().M(), onGr)

	fmt.Println("\nThe DC-spanner trades a few links for near-base latency; the distance-only")
	fmt.Println("spanner's congestion hotspots serialize packets (paper §1.1).")
}
