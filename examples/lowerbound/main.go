// Lower bound: demonstrates the paper's negative results on live
// instances — Lemma 18's fan graph, the Theorem 4 composite graph, the
// Figure 1 fault-tolerant-spanner counterexample, and the Lemma 2
// separation between independent distance/congestion spanners and true
// DC-spanners.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/gen"
	"repro/internal/lowerbound"
	"repro/internal/spanner"
)

func main() {
	// --- Lemma 18: the fan graph ---------------------------------------
	k := 8
	fan := gen.FanGraph(k)
	an := lowerbound.AnalyzeFan(fan)
	if err := an.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Lemma 18 fan (k=%d): |V|=%d |E|=%d; spanner removes %d line edges\n",
		k, fan.G.N(), fan.G.M(), len(an.Removed))
	fmt.Printf("  every ≤3-hop substitute passes the hub s: %v\n", an.ForcedThroughS())
	fmt.Printf("  congestion: %d in G → %d in H (Lemma 18 bound x/4 = %.1f)\n\n",
		an.CongestionG, an.CongestionH, float64(2*k-1)/4)

	// --- Theorem 4: composite lower-bound graph -------------------------
	q := 11
	inst, err := gen.Theorem4Affine(q)
	if err != nil {
		log.Fatal(err)
	}
	t4, err := lowerbound.AnalyzeTheorem4(inst)
	if err != nil {
		log.Fatal(err)
	}
	if err := t4.Verify(); err != nil {
		log.Fatal(err)
	}
	nTotal := float64(inst.G.N())
	fmt.Printf("Theorem 4 composite (q=%d): %d fans over %d shared line nodes, |V|=%d\n",
		q, len(inst.Lines), inst.Pool, inst.G.N())
	fmt.Printf("  optimal 3-spanner: %d → %d edges (n^{7/6} = %.0f)\n",
		t4.EdgesG, t4.EdgesH, math.Pow(nTotal, 7.0/6.0))
	rep := spanner.VerifyEdgeStretch(inst.G, t4.H, 3)
	fmt.Printf("  stretch ≤ 3 certified (violations=%d); congestion stretch %d (n^{1/6} = %.1f)\n\n",
		rep.Violations, t4.CongestionH, math.Pow(nTotal, 1.0/6.0))

	// --- Figure 1: f-VFT spanners don't control congestion --------------
	vft, err := lowerbound.AnalyzeVFT(216)
	if err != nil {
		log.Fatal(err)
	}
	if err := vft.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 1 (n=216): keep f+1=%d of 108 matching edges\n", vft.F+1)
	fmt.Printf("  perfect-matching congestion: %d in G → %d in H (n^{2/3}/2 = %.0f)\n\n",
		vft.CongestionG, vft.CongestionH, math.Pow(216, 2.0/3.0)/2)

	// --- Lemma 2: distance + congestion ≠ DC -----------------------------
	l2 := lowerbound.AnalyzeLemma2(gen.Lemma2Graph(32, 3))
	if err := l2.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Lemma 2 (n=32, α=3): H is a 3-distance spanner AND the matching problem\n")
	fmt.Printf("  routes with congestion %d when path lengths are unconstrained,\n",
		l2.CongestionUnconstrained)
	fmt.Printf("  but every α-stretch substitute crosses (a₁,b₁): congestion %d — the\n",
		l2.CongestionConstrained)
	fmt.Printf("  DC property fails with β = n even though Definitions 1 and 2 hold separately.\n")
}
